package service

import (
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	greedy "repro"
	"repro/internal/dynamic"
)

// TestHistogramBucketBoundObservation: an observation exactly equal to
// a bucket's upper bound lands in THAT bucket (SearchFloat64s returns
// the first bound >= v), never the next one.
func TestHistogramBucketBoundObservation(t *testing.T) {
	h := newHistogram()
	h.observe(0.001) // == latencyBounds[3]
	for i, c := range h.counts {
		want := int64(0)
		if i == 3 {
			want = 1
		}
		if c != want {
			t.Errorf("bucket %d count = %d, want %d", i, c, want)
		}
	}
	// The quantile of the sole observation is the observation itself:
	// the bucket's interpolation ceiling is min(bound, max) = 0.001.
	if got := h.quantile(0.5); got != 0.001 {
		t.Errorf("p50 of a bound-exact single observation = %g, want 0.001", got)
	}
}

// TestHistogramSingleObservation: with one observation every quantile
// is that observation — p50 = p99 = max — not an interpolated value
// below it.
func TestHistogramSingleObservation(t *testing.T) {
	for _, v := range []float64{0.00017, 0.0042, 3.3, 25.0 /* unbounded last bucket */} {
		h := newHistogram()
		h.observe(v)
		for _, q := range []float64{0.01, 0.5, 0.9, 0.99} {
			if got := h.quantile(q); got != v {
				t.Errorf("obs %g: q%g = %g, want max %g", v, q, got, v)
			}
		}
		if h.max != v {
			t.Errorf("obs %g: max = %g", v, h.max)
		}
	}
}

// TestHistogramUnboundedLastBucket: with every observation in the +Inf
// bucket, quantiles clamp to the recorded max — finite, at least the
// last finite bound, never above max.
func TestHistogramUnboundedLastBucket(t *testing.T) {
	h := newHistogram()
	obs := []float64{11, 30, 60, 120, 500}
	for _, v := range obs {
		h.observe(v)
	}
	lastBound := latencyBounds[len(latencyBounds)-1]
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.quantile(q)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("q%g = %v, want finite", q, got)
		}
		if got < lastBound || got > h.max {
			t.Errorf("q%g = %g outside [%g, %g]", q, got, lastBound, h.max)
		}
	}
	// The top quantile of the bucket reaches the max exactly.
	if got := h.quantile(0.99); got != h.max {
		t.Errorf("p99 with all %d obs in last bucket = %g, want max %g (rank = count)", len(obs), got, h.max)
	}
}

// TestHistogramQuantileOnEmptyBucketBoundary: a rank landing exactly on
// a cumulative-count boundary that is followed by empty buckets must
// resolve inside the bucket that holds the observations, and ranks just
// past it must skip the empty buckets deterministically.
func TestHistogramQuantileOnEmptyBucketBoundary(t *testing.T) {
	h := newHistogram()
	// Two obs in bucket 1 (0.0001, 0.00025], three in bucket 4
	// (0.001, 0.0025]; buckets 2-3 stay empty.
	h.observe(0.0002)
	h.observe(0.0002)
	h.observe(0.002)
	h.observe(0.002)
	h.observe(0.0024)

	// rank = ⌈0.4·5⌉ = 2: exactly the cumulative boundary of bucket 1.
	// The answer must come from bucket 1 — at its upper edge — not from
	// an empty bucket or bucket 4.
	got := h.quantile(0.4)
	if got != latencyBounds[1] {
		t.Errorf("p40 = %g, want bucket-1 upper bound %g", got, latencyBounds[1])
	}
	// rank = ⌈0.41·5⌉ = 3: first observation of bucket 4; lower edge of
	// that bucket's interpolation range.
	got = h.quantile(0.41)
	lo, hi := latencyBounds[3], latencyBounds[4]
	if got <= lo || got > hi {
		t.Errorf("p41 = %g, want inside (%g, %g]", got, lo, hi)
	}
	// Monotonicity across the boundary.
	if h.quantile(0.4) >= h.quantile(0.41) {
		t.Errorf("quantiles not monotone across empty-bucket boundary: p40=%g p41=%g", h.quantile(0.4), h.quantile(0.41))
	}
}

// TestHistogramEmpty: the zero histogram answers 0 for everything.
func TestHistogramEmpty(t *testing.T) {
	h := newHistogram()
	if got := h.quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %g", got)
	}
	snap := snapshotHistogram(h)
	if snap.Count != 0 || snap.P99MS != 0 || snap.MeanMS != 0 {
		t.Errorf("empty snapshot: %+v", snap)
	}
}

// TestMetricsAdaptiveExecutedCounter: adaptive completions increment
// the adaptive counter alongside executed; fixed ones do not; failed
// and cancelled adaptive runs count in neither.
func TestMetricsAdaptiveExecutedCounter(t *testing.T) {
	m := NewMetrics()
	repair := &dynamic.RepairStats{
		MIS: dynamic.RepairCost{Visited: 7, Flipped: 2},
		MM:  dynamic.RepairCost{Visited: 5, Flipped: 1},
	}
	m.jobFinished(ProblemMIS, StateDone, true, nil, time.Millisecond, 2*time.Millisecond)
	m.jobFinished(ProblemMIS, StateDone, false, repair, time.Millisecond, 2*time.Millisecond)
	m.jobFinished(ProblemMM, StateFailed, true, nil, time.Millisecond, 2*time.Millisecond)
	m.jobFinished(ProblemSF, StateCancelled, true, nil, time.Millisecond, 2*time.Millisecond)
	s := m.snapshot()
	if s.Jobs.Executed != 2 {
		t.Errorf("executed = %d, want 2", s.Jobs.Executed)
	}
	if s.Jobs.AdaptiveExecuted != 1 {
		t.Errorf("adaptive_executed = %d, want 1", s.Jobs.AdaptiveExecuted)
	}
	if s.Jobs.Repaired != 1 {
		t.Errorf("repaired = %d, want 1", s.Jobs.Repaired)
	}
	if s.Jobs.RepairVisited != 12 || s.Jobs.RepairFlipped != 3 {
		t.Errorf("repair_visited/flipped = %d/%d, want 12/3", s.Jobs.RepairVisited, s.Jobs.RepairFlipped)
	}
	if s.Jobs.Failed != 1 || s.Jobs.Cancelled != 1 {
		t.Errorf("failed/cancelled = %d/%d, want 1/1", s.Jobs.Failed, s.Jobs.Cancelled)
	}
}

// TestHistogramSnapshotAccessors: the sum/count accessors the
// Prometheus path depends on — SumSeconds converts the snapshot's
// millisecond sum back to seconds, CumulativeBuckets accumulates the
// per-bucket counts in le order and ends at Count — including the
// zero-observation histogram, whose exposition must still be valid.
func TestHistogramSnapshotAccessors(t *testing.T) {
	h := newHistogram()
	obs := []float64{0.0005, 0.002, 4}
	var want float64
	for _, v := range obs {
		h.observe(v)
		want += v
	}
	snap := snapshotHistogram(h)
	if got := snap.SumSeconds(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SumSeconds = %g, want %g", got, want)
	}
	cum := snap.CumulativeBuckets()
	if len(cum) != len(snap.Buckets) {
		t.Fatalf("cumulative length %d != bucket length %d", len(cum), len(snap.Buckets))
	}
	if cum[len(cum)-1] != snap.Count {
		t.Errorf("final cumulative bucket %d != count %d", cum[len(cum)-1], snap.Count)
	}
	var run int64
	for i, c := range cum {
		if c < run {
			t.Errorf("cumulative bucket %d decreases: %d < %d", i, c, run)
		}
		if diff := c - run; diff != snap.Buckets[i] {
			t.Errorf("bucket %d: cumulative diff %d != raw count %d", i, diff, snap.Buckets[i])
		}
		run = c
	}

	empty := snapshotHistogram(newHistogram())
	if empty.SumSeconds() != 0 {
		t.Errorf("empty SumSeconds = %g", empty.SumSeconds())
	}
	ecum := empty.CumulativeBuckets()
	if ecum[len(ecum)-1] != 0 {
		t.Errorf("empty final cumulative bucket = %d", ecum[len(ecum)-1])
	}
}

// TestPromWriterDuplicateFamilyPanics: declaring a family twice is a
// programming error the writer refuses to serialize — real collectors
// reject duplicate family names, so the bug must not reach a scrape.
func TestPromWriterDuplicateFamilyPanics(t *testing.T) {
	p := &promWriter{w: io.Discard, declared: make(map[string]bool)}
	p.counter("x_total", "a counter.", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family declaration did not panic")
		}
	}()
	p.counter("x_total", "a counter.", 2)
}

// TestPrometheusZeroObservationHistogram: a scrape of a fresh service
// must still expose every always-present histogram family with a full,
// valid zero exposition (all buckets 0, sum 0, count 0) and declare
// the per-problem families with no series — never omit the metadata.
func TestPrometheusZeroObservationHistogram(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	// The middleware records the scrape itself only after the handler
	// returned, so the first-ever scrape sees zero observations.
	for _, want := range []string{
		"greedyd_http_request_seconds_count 0\n",
		"greedyd_http_request_seconds_sum 0\n",
		`greedyd_http_request_seconds_bucket{le="+Inf"} 0` + "\n",
		"# TYPE greedyd_job_run_seconds histogram\n",
		"# TYPE greedyd_job_e2e_seconds histogram\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("zero-observation exposition missing %q", strings.TrimSpace(want))
		}
	}
	// No jobs ran: the per-problem families must have headers but no
	// samples.
	if strings.Contains(body, "greedyd_job_run_seconds_bucket") {
		t.Error("job_run_seconds has series despite zero executed jobs")
	}
}

// TestPrometheusExposition scrapes GET /metrics after real traffic and
// validates the text format line by line: every family declares HELP
// then TYPE exactly once, every sample sits inside its family's block,
// histogram buckets are cumulative with le="+Inf" equal to _count, and
// the counters reflect the traffic that was just generated.
func TestPrometheusExposition(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1, TraceRoundSample: 1})
	ctx := context.Background()

	info, err := c.Generate(ctx, GenSpec{Generator: "random", N: 1000, M: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(ctx, JobRequest{GraphID: info.ID, Problem: "mis", Plan: greedy.ResolvePlan(greedy.WithSeed(1))})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(ctx, sub.ID, time.Millisecond); err != nil || st.State != StateDone {
		t.Fatalf("wait: state=%v err=%v", st.State, err)
	}
	// One deliberate 404 so the 4xx class is non-zero.
	if resp, err := http.Get(srv.URL + "/v1/jobs/jmissing"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("expected 404, got %d", resp.StatusCode)
		}
	} else {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Errorf("content type %q, want %q", ct, promContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.HasSuffix(body, "\n") {
		t.Fatal("exposition does not end with a newline")
	}

	type hseries struct {
		cum      []int64
		infSeen  bool
		inf      int64
		sum      float64
		sumSeen  bool
		count    int64
		cntSeen  bool
		lastBond float64
	}
	helpSeen := make(map[string]bool)
	typeSeen := make(map[string]string)
	hists := make(map[string]map[string]*hseries) // family -> label key -> series
	values := make(map[string]float64)            // "name{labels}" -> value of last sample
	cur, curType := "", ""

	labelKeyOf := func(labels string) (string, string, bool) {
		// Split off a trailing le label (the writer renders it last).
		if labels == "" {
			return "", "", false
		}
		i := strings.LastIndex(labels, `le="`)
		if i < 0 {
			return labels, "", false
		}
		le := strings.TrimSuffix(labels[i+len(`le="`):], `"`)
		key := strings.TrimSuffix(labels[:i], ",")
		return key, le, true
	}

	for n, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		lineNo := n + 1
		switch {
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) != 2 || fields[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
			name := fields[0]
			if helpSeen[name] {
				t.Fatalf("line %d: duplicate HELP for family %s", lineNo, name)
			}
			helpSeen[name] = true
			cur, curType = name, ""
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			if name != cur {
				t.Fatalf("line %d: TYPE %s not immediately after its HELP (current family %s)", lineNo, name, cur)
			}
			if _, dup := typeSeen[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for family %s", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", lineNo, typ)
			}
			typeSeen[name] = typ
			curType = typ
		case line == "" || strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected line %q", lineNo, line)
		default:
			if curType == "" {
				t.Fatalf("line %d: sample before any TYPE declaration: %q", lineNo, line)
			}
			name, labels := line, ""
			rest := ""
			if i := strings.IndexByte(line, '{'); i >= 0 {
				j := strings.LastIndexByte(line, '}')
				if j < i {
					t.Fatalf("line %d: malformed labels: %q", lineNo, line)
				}
				name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
			} else {
				fields := strings.Fields(line)
				if len(fields) != 2 {
					t.Fatalf("line %d: malformed sample: %q", lineNo, line)
				}
				name, rest = fields[0], fields[1]
			}
			val, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", lineNo, rest, err)
			}
			values[name+"{"+labels+"}"] = val

			base := name
			if curType == "histogram" {
				for _, suf := range []string{"_bucket", "_sum", "_count"} {
					if strings.TrimSuffix(name, suf) == cur {
						base = cur
						break
					}
				}
			}
			if base != cur {
				t.Fatalf("line %d: sample %s outside its family block (current family %s)", lineNo, name, cur)
			}
			if curType != "histogram" {
				continue
			}
			key, le, isBucket := labelKeyOf(labels)
			if hists[cur] == nil {
				hists[cur] = make(map[string]*hseries)
			}
			hs := hists[cur][key]
			if hs == nil {
				hs = &hseries{lastBond: math.Inf(-1)}
				hists[cur][key] = hs
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !isBucket {
					t.Fatalf("line %d: bucket sample without le label: %q", lineNo, line)
				}
				if le == "+Inf" {
					hs.infSeen, hs.inf = true, int64(val)
					break
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("line %d: bad le %q: %v", lineNo, le, err)
				}
				if bound <= hs.lastBond {
					t.Fatalf("line %d: le bounds not increasing (%g after %g)", lineNo, bound, hs.lastBond)
				}
				hs.lastBond = bound
				hs.cum = append(hs.cum, int64(val))
			case strings.HasSuffix(name, "_sum"):
				hs.sum, hs.sumSeen = val, true
			case strings.HasSuffix(name, "_count"):
				hs.count, hs.cntSeen = int64(val), true
			}
		}
	}

	// Every family declared both HELP and TYPE.
	for name := range helpSeen {
		if _, ok := typeSeen[name]; !ok {
			t.Errorf("family %s has HELP but no TYPE", name)
		}
	}
	for name := range typeSeen {
		if !helpSeen[name] {
			t.Errorf("family %s has TYPE but no HELP", name)
		}
	}

	// The families the dashboards depend on are present.
	for _, want := range []string{
		"greedyd_jobs_submitted_total", "greedyd_jobs_executed_total",
		"greedyd_jobs_queued", "greedyd_registry_graphs",
		"greedyd_trace_events_total", "greedyd_goroutines",
		"greedyd_http_requests_total", "greedyd_http_request_seconds",
		"greedyd_job_run_seconds", "greedyd_job_e2e_seconds",
	} {
		if _, ok := typeSeen[want]; !ok {
			t.Errorf("family %s missing from exposition", want)
		}
	}

	// Histogram invariants: cumulative buckets, +Inf present and equal
	// to _count, sum and count emitted for every series.
	for fam, series := range hists {
		for key, hs := range series {
			var prev int64
			for i, c := range hs.cum {
				if c < prev {
					t.Errorf("%s{%s}: bucket %d not cumulative (%d < %d)", fam, key, i, c, prev)
				}
				prev = c
			}
			if !hs.infSeen || !hs.sumSeen || !hs.cntSeen {
				t.Fatalf("%s{%s}: incomplete histogram (inf=%v sum=%v count=%v)", fam, key, hs.infSeen, hs.sumSeen, hs.cntSeen)
			}
			if hs.inf != hs.count {
				t.Errorf("%s{%s}: le=+Inf bucket %d != count %d", fam, key, hs.inf, hs.count)
			}
			if len(hs.cum) > 0 && hs.cum[len(hs.cum)-1] > hs.inf {
				t.Errorf("%s{%s}: last finite bucket %d exceeds +Inf %d", fam, key, hs.cum[len(hs.cum)-1], hs.inf)
			}
			if hs.count > 0 && hs.sum <= 0 {
				t.Errorf("%s{%s}: %d observations but sum %g", fam, key, hs.count, hs.sum)
			}
		}
	}

	// The traffic just generated is visible.
	if v := values["greedyd_jobs_executed_total{}"]; v < 1 {
		t.Errorf("jobs_executed_total = %g, want >= 1", v)
	}
	if v := values[`greedyd_http_requests_total{class="2xx"}`]; v < 2 {
		t.Errorf("2xx requests = %g, want >= 2", v)
	}
	if v := values[`greedyd_http_requests_total{class="4xx"}`]; v < 1 {
		t.Errorf("4xx requests = %g, want >= 1", v)
	}
	if v := values["greedyd_trace_events_total{}"]; v < 1 {
		t.Errorf("trace_events_total = %g, want >= 1", v)
	}
	if mis, ok := hists["greedyd_job_run_seconds"][`problem="mis"`]; !ok || mis.count < 1 {
		t.Errorf("job_run_seconds{problem=\"mis\"} missing or empty")
	}
}

// TestPrometheusScrapeDeterministic pins the exposition's byte-level
// determinism: the family order is fixed and per-problem series are
// emitted sorted, so serializing the SAME snapshot repeatedly must
// produce byte-identical output. (Two live scrapes legitimately differ
// — the middleware counts the scrape itself — so the property is
// snapshot-to-bytes, which is what a diff-based alerting pipeline or a
// golden-file test downstream would rely on.)
func TestPrometheusScrapeDeterministic(t *testing.T) {
	svc, err := New(Config{Workers: 1, TraceRoundSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	// Traffic over two problems so the sorted per-problem series paths
	// (run/e2e latency families) carry multiple label values.
	info, err := c.Generate(ctx, GenSpec{Generator: "random", N: 500, M: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, prob := range []string{"mis", "mm"} {
		sub, err := c.Submit(ctx, JobRequest{GraphID: info.ID, Problem: prob, Plan: greedy.ResolvePlan(greedy.WithSeed(2))})
		if err != nil {
			t.Fatal(err)
		}
		if st, err := c.Wait(ctx, sub.ID, time.Millisecond); err != nil || st.State != StateDone {
			t.Fatalf("%s: wait: state=%v err=%v", prob, st.State, err)
		}
	}
	// One live scrape exercises the HTTP handler path end to end.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	snap := svc.Snapshot()
	var first []byte
	for i := 0; i < 5; i++ {
		var buf strings.Builder
		if err := WritePrometheus(&buf, snap); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if i == 0 {
			first = []byte(buf.String())
			if len(first) == 0 {
				t.Fatal("empty exposition")
			}
			continue
		}
		if buf.String() != string(first) {
			t.Fatalf("scrape %d differs from scrape 0 over the same snapshot:\n--- first ---\n%s\n--- scrape %d ---\n%s", i, first, i, buf.String())
		}
	}
}
