package service

import (
	"net/http"
	"time"

	"repro/internal/trace"
)

// statusWriter records the status code and body bytes a handler wrote
// so the middleware can report them in metrics, traces, and the access
// log without changing handler code.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the wrapped writer's
// optional interfaces (Flusher etc.) through this decorator.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps the API mux with the observability middleware:
// every request is counted into the by-status-class HTTP counters,
// timed into the request-latency histogram, recorded as a KindHTTP
// trace event, and access-logged. Successful requests log at Debug
// (poll- and scrape-heavy clients would drown Info), client errors at
// Warn, server errors at Error.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			// Handler wrote nothing: net/http sends an implicit 200.
			sw.status = http.StatusOK
		}
		d := time.Since(start)
		s.metrics.httpRequest(sw.status, d)
		s.trace.Append(trace.Event{
			Kind:   trace.KindHTTP,
			Name:   r.Method + " " + r.URL.Path,
			DurMS:  float64(d) / float64(time.Millisecond),
			Status: sw.status,
			Bytes:  sw.bytes,
		})
		logf := s.log.Debug
		switch {
		case sw.status >= 500:
			logf = s.log.Error
		case sw.status >= 400:
			logf = s.log.Warn
		}
		logf("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(d)/float64(time.Millisecond))
	})
}
