package service

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	greedy "repro"
	"repro/internal/dynamic"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/persist"
	"repro/internal/trace"
)

// Problem names a computation the service can run.
type Problem string

// The problems the service runs: the paper's maximal independent set
// and maximal matching, the §7 spanning forest extension, and the two
// further greedy problems opened by the shared speculative engine —
// first-fit graph coloring and greedy hitting set (as greedy vertex
// cover: each edge a two-element set over its endpoints).
const (
	ProblemMIS        Problem = "mis"
	ProblemMM         Problem = "mm"
	ProblemSF         Problem = "sf"
	ProblemColoring   Problem = "coloring"
	ProblemHittingSet Problem = "hittingset"
)

// ParseProblem validates a problem name.
func ParseProblem(s string) (Problem, error) {
	switch Problem(s) {
	case ProblemMIS, ProblemMM, ProblemSF, ProblemColoring, ProblemHittingSet:
		return Problem(s), nil
	default:
		return "", fmt.Errorf("service: unknown problem %q (want mis|mm|sf|coloring|hittingset)", s)
	}
}

// JobState is the lifecycle state of a job.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
	// StateDeadline is the terminal state of a job that ran past its own
	// timeout_ms budget. Like failed and cancelled jobs it is not a
	// dedup target — a deadline says nothing about the answer, so a
	// resubmission (same timeout on an idler box, or a larger one) must
	// start a fresh execution rather than absorb into the timed-out run.
	StateDeadline JobState = "deadline_exceeded"
)

// Job engine errors.
var (
	ErrQueueFull   = errors.New("service: job queue full")
	ErrJobNotFound = errors.New("service: job not found (unknown id or expired)")
	ErrJobFinished = errors.New("service: job already finished")
	ErrClosed      = errors.New("service: engine closed")
)

// JobSpec identifies a deterministic computation: which graph, which
// problem, and the resolved algorithm configuration as a greedy.Plan —
// the library's own serializable form of an option list, used verbatim
// as the wire form of submissions. Two jobs with equal specs produce
// bit-identical results (the paper's determinism guarantee), which is
// why Key is a sound idempotency key.
type JobSpec struct {
	GraphID string      `json:"graph_id"`
	Problem Problem     `json:"problem"`
	Plan    greedy.Plan `json:"plan"`
	// TimeoutMS, when positive, bounds the job's execution wall time:
	// the worker runs it under a context deadline and a run that
	// overshoots terminates in state deadline_exceeded. 0 means no
	// per-job deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Key returns the idempotency key (graphID, problem, plan): submissions
// with equal keys are deduplicated into one execution. Every Plan field
// participates — Grain and Pointered do not change the selected set,
// but they do change the Stats embedded in the payload, and dedup
// promises byte-identical payloads. AdaptivePrefix participates too:
// its schedule is deterministic per (graph, plan), but its Stats (and,
// for spanning forest, its selected edges) differ from any fixed
// window's. Dynamic participates doubly: a dynamic MM plan selects a
// different (hash-priority) matching, and dynamic payloads carry
// repair provenance.
//
// Byte-identical payloads are promised per EXECUTION: every read of a
// deduplicated job serves the same marshaled bytes. Across separate
// executions of an equal key (after TTL reaping), the answer fields
// (size, checksum, members) are bit-identical by the determinism
// guarantee, but execution-provenance fields — run_ms always, and for
// dynamic jobs repaired/repaired_from/repair/stats, which depend on
// what the session cache held — describe the particular execution.
func (s JobSpec) Key() string {
	p := s.Plan
	// TimeoutMS participates: the answer bytes do not depend on it, but
	// a submission with a tighter budget must not absorb into a looser
	// run whose caller was willing to wait longer (and vice versa) —
	// the terminal state itself can differ.
	return fmt.Sprintf("%s|%s|%s|%d|%g|%d|%t|%t|%d|%t|%d",
		s.GraphID, s.Problem, p.Algorithm, p.Seed, p.PrefixFrac, p.PrefixSize, p.AdaptivePrefix, p.Dynamic, p.Grain, p.Pointered, s.TimeoutMS)
}

// Validate rejects specs no algorithm can run. The same conditions the
// Solver reports as errors are caught here before a worker is
// committed, so they map to HTTP 400 at submission time.
func (s JobSpec) Validate() error {
	if _, err := ParseProblem(string(s.Problem)); err != nil {
		return err
	}
	p := s.Plan
	if p.ExplicitOrder {
		return fmt.Errorf("service: explicit orders are not serializable and cannot be submitted")
	}
	if p.Algorithm == greedy.AlgoLuby && s.Problem != ProblemMIS {
		return fmt.Errorf("service: algorithm %q applies to MIS only", p.Algorithm)
	}
	// The spanning forest, coloring and hitting set facades implement
	// only the sequential scan and the prefix-based algorithm; accepting
	// other names would run prefix while reporting a different algorithm
	// in the payload and split one computation across several dedup keys.
	switch s.Problem {
	case ProblemSF, ProblemColoring, ProblemHittingSet:
		if p.Algorithm != greedy.AlgoPrefix && p.Algorithm != greedy.AlgoSequential {
			return fmt.Errorf("service: problem %q supports algorithms prefix|sequential, not %q", s.Problem, p.Algorithm)
		}
	}
	// Adaptive scheduling adapts the prefix algorithm's window; the
	// other algorithms have none, and accepting the combination would
	// run a job the Solver rejects after a worker is committed.
	if p.AdaptivePrefix && p.Algorithm != greedy.AlgoPrefix {
		return fmt.Errorf("service: adaptive prefix applies to algorithm %q only, not %q", greedy.AlgoPrefix, p.Algorithm)
	}
	// Dynamic (churn-stable) priorities exist for MIS and MM only, and
	// Luby regenerates priorities every round — there is nothing for a
	// session to maintain.
	if p.Dynamic && s.Problem != ProblemMIS && s.Problem != ProblemMM {
		return fmt.Errorf("service: dynamic plans support problems mis|mm, not %q", s.Problem)
	}
	if p.Dynamic && p.Algorithm == greedy.AlgoLuby {
		return fmt.Errorf("service: dynamic plans cannot use algorithm %q", p.Algorithm)
	}
	if p.PrefixFrac < 0 || p.PrefixFrac > 1 {
		return fmt.Errorf("service: prefix_frac %g outside [0,1]", p.PrefixFrac)
	}
	if p.PrefixSize < 0 {
		return fmt.Errorf("service: negative prefix_size %d", p.PrefixSize)
	}
	if p.Grain < 0 {
		return fmt.Errorf("service: negative grain %d", p.Grain)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("service: negative timeout_ms %d", s.TimeoutMS)
	}
	return nil
}

// Job is one tracked computation. Fields other than ID and Spec are
// guarded by the engine mutex, except the progress counters, which the
// running worker updates through atomics so Status can read them
// mid-run without taking the round loop off CPU.
type Job struct {
	ID   string
	Spec JobSpec

	state       JobState
	err         string
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	result      []byte // marshaled ResultPayload, set once on success

	handle *Handle // pin on the input graph from submit to completion

	// ctx carries the job's cancellation; cancel is invoked by
	// Engine.Cancel and by Close, and aborts a running job within one
	// round of its algorithm.
	ctx    context.Context
	cancel context.CancelFunc

	// Live round progress, written by the worker's round observer.
	progRounds      atomic.Int64
	progPrefix      atomic.Int64
	progAttempted   atomic.Int64
	progResolved    atomic.Int64
	progInspections atomic.Int64

	// Cumulative per-phase wall time (nanoseconds) and the latest
	// retry-tail size, written by the round observer when phase
	// profiling is active (zero otherwise).
	progCheckNS   atomic.Int64
	progCommitNS  atomic.Int64
	progResetNS   atomic.Int64
	progSlideNS   atomic.Int64
	progRetryTail atomic.Int64
}

// JobProgress is the live view of a running (or final view of a
// finished) job's round loop: the paper's Figure 1 quantities as they
// accumulate. Absent for jobs that have not completed a round.
type JobProgress struct {
	// Rounds completed so far.
	Rounds int64 `json:"rounds"`
	// PrefixSize is the resolved prefix window of the run (0 for
	// algorithms without one). Adaptive runs report the controller's
	// current window, so polling Status shows the schedule live.
	PrefixSize int64 `json:"prefix_size,omitempty"`
	// Attempted is the cumulative number of iterate-processings (the
	// paper's total-work measure).
	Attempted int64 `json:"attempted"`
	// Resolved is the cumulative number of iterates decided.
	Resolved int64 `json:"resolved"`
	// EdgeInspections is the cumulative neighbor/endpoint reads.
	EdgeInspections int64 `json:"edge_inspections"`

	// Cumulative engine phase profile (present when phase profiling is
	// active, i.e. when trace round sampling is on): wall time by
	// check/commit/reset/slide phase and the latest retry-tail size.
	// The four sums tile the round loop's span, so together they show
	// where a run's time went — and their total tracks the job's run
	// span to within the loop's startup/teardown cost.
	CheckMS   float64 `json:"check_ms,omitempty"`
	CommitMS  float64 `json:"commit_ms,omitempty"`
	ResetMS   float64 `json:"reset_ms,omitempty"`
	SlideMS   float64 `json:"slide_ms,omitempty"`
	RetryTail int64   `json:"retry_tail,omitempty"`
}

// JobStatus is the public JSON view of a job.
type JobStatus struct {
	ID          string       `json:"job_id"`
	GraphID     string       `json:"graph_id"`
	Problem     Problem      `json:"problem"`
	Plan        greedy.Plan  `json:"plan"`
	State       JobState     `json:"state"`
	Error       string       `json:"error,omitempty"`
	SubmittedAt time.Time    `json:"submitted_at"`
	QueueMS     float64      `json:"queue_ms,omitempty"`
	RunMS       float64      `json:"run_ms,omitempty"`
	Progress    *JobProgress `json:"progress,omitempty"`
}

// ResultPayload is the JSON body served by GET /v1/jobs/{id}/result.
// It is marshaled exactly once per execution, so every read of a
// deduplicated job returns byte-identical bytes.
type ResultPayload struct {
	JobID    string       `json:"job_id"`
	GraphID  string       `json:"graph_id"`
	Problem  Problem      `json:"problem"`
	Plan     greedy.Plan  `json:"plan"`
	N        int          `json:"n"`
	M        int          `json:"m"`
	Size     int          `json:"size"`
	Checksum string       `json:"checksum"`
	Stats    greedy.Stats `json:"stats"`
	RunMS    float64      `json:"run_ms"`
	// Members is the selected set: vertex ids for MIS, edge endpoint
	// pairs for MM and SF. Omitted above memberCap entries (Checksum
	// still commits to the full membership).
	Members        []int32    `json:"members,omitempty"`
	MemberPairs    [][2]int32 `json:"member_pairs,omitempty"`
	MembersOmitted bool       `json:"members_omitted,omitempty"`

	// Dynamic-job provenance. Dynamic marks churn-stable-priority jobs.
	// Repaired reports that the answer came from advancing a maintained
	// session across graph versions (RepairedFrom names the ancestor
	// version the session was at, Repair aggregates the change-driven
	// frontier-repair work: seeds, visited, flipped, frontier peak,
	// changed); a dynamic job without a usable session computes from
	// scratch and seeds a session for its version. For repaired jobs
	// Stats describes the repair work — the point of the subsystem is
	// exactly that those counters stay proportional to the flipped
	// damage region, not to n (and, since PR 5, not to the hub fan-out
	// of the priority DAG either).
	Dynamic       bool                 `json:"dynamic,omitempty"`
	Repaired      bool                 `json:"repaired,omitempty"`
	RepairedFrom  string               `json:"repaired_from,omitempty"`
	RepairBatches int                  `json:"repair_batches,omitempty"`
	Repair        *dynamic.RepairStats `json:"repair,omitempty"`
}

// memberCap bounds the membership list embedded in a result payload.
const memberCap = 1 << 20

// Engine runs jobs on a bounded worker pool with idempotency-key
// deduplication, a TTL result store, and cooperative cancellation.
// Each worker owns one reusable greedy.Solver, so steady-state
// executions reuse frontier/flag/reservation arrays instead of
// reallocating them per job.
type Engine struct {
	reg     *Registry
	metrics *Metrics
	ttl     time.Duration
	trace   *trace.Recorder // nil when tracing is disabled
	log     *slog.Logger

	// journal, when non-nil, is the durable WAL of accepted jobs: every
	// Submit fsyncs an accept record before returning, every terminal
	// transition appends a completion marker, and boot re-enqueues
	// whatever the journal still owes (see Recover).
	journal *persist.Journal

	mu     sync.Mutex
	jobs   map[string]*Job
	byKey  map[string]*Job
	closed bool
	// shuttingDown marks a Drain in progress: jobs cancelled by the
	// shutdown itself skip their journal completion marker, so a
	// crash-equivalent drain still re-serves them at next boot.
	shuttingDown bool
	// doneTimes is a ring of recent completion timestamps (newest last),
	// the drain-rate sample behind RetryAfterSeconds.
	doneTimes []time.Time

	// Dynamic-session cache: maintained solutions keyed by (graph
	// version, problem, seed), checked out exclusively while a worker
	// advances or reads them, bounded LRU. A session is how a dynamic
	// job for a patched graph version repairs instead of recomputes.
	sessMu   sync.Mutex
	sessions map[sessKey]*dynamic.Maintainer
	sessLRU  []sessKey
	sessCap  int

	queue  chan *Job
	stop   chan struct{}
	wg     sync.WaitGroup
	nextID atomic.Int64
}

// sessKey identifies a maintainable solution state. Plan fields beyond
// the seed do not participate: every deterministic schedule yields the
// same maintained set, which is the only state a session holds.
type sessKey struct {
	graphID string
	problem Problem
	seed    uint64
}

// EngineConfig configures an Engine.
type EngineConfig struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued jobs; 0 means 4096.
	QueueDepth int
	// ResultTTL is how long finished jobs are retained; 0 means 15m.
	ResultTTL time.Duration
	// DynamicSessions bounds the cached dynamic sessions (maintained
	// MIS/MM states, each holding solution arrays sized to its graph);
	// 0 means 8, negative disables the cache (dynamic jobs always
	// recompute).
	DynamicSessions int
	// Trace receives job lifecycle spans, sampled round events, and
	// per-Apply repair events; nil disables recording.
	Trace *trace.Recorder
	// Logger receives job state-transition logs; nil discards them.
	Logger *slog.Logger
	// Journal, when non-nil, makes accepted jobs durable: accept records
	// are fsync'd before Submit returns and completions are marked, so
	// a restart can re-enqueue what a crash interrupted.
	Journal *persist.Journal
}

// NewEngine starts an engine over reg. metrics may be nil.
func NewEngine(reg *Registry, metrics *Metrics, cfg EngineConfig) *Engine {
	if metrics == nil {
		metrics = NewMetrics()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4096
	}
	ttl := cfg.ResultTTL
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	sessCap := cfg.DynamicSessions
	if sessCap == 0 {
		sessCap = 8
	}
	if sessCap < 0 {
		sessCap = 0
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	e := &Engine{
		reg:      reg,
		metrics:  metrics,
		ttl:      ttl,
		trace:    cfg.Trace,
		log:      logger,
		journal:  cfg.Journal,
		jobs:     make(map[string]*Job),
		byKey:    make(map[string]*Job),
		sessions: make(map[sessKey]*dynamic.Maintainer),
		sessCap:  sessCap,
		queue:    make(chan *Job, depth),
		stop:     make(chan struct{}),
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	e.wg.Add(1)
	go e.janitor()
	return e
}

// dedupTarget reports whether a prior job with the same key absorbs a
// new submission. Failed and cancelled jobs are not targets:
// resubmitting retries.
func dedupTarget(j *Job) bool {
	return j.state != StateFailed && j.state != StateCancelled && j.state != StateDeadline
}

// dropKeyLocked removes job from the dedup index (if it still owns its
// key); callers hold e.mu.
func (e *Engine) dropKeyLocked(job *Job) {
	if key := job.Spec.Key(); e.byKey[key] == job {
		delete(e.byKey, key)
	}
}

// Submit registers a job for spec. If a queued, running, or completed
// job with the same idempotency key exists, that job is returned with
// deduped = true and no new execution happens.
func (e *Engine) Submit(spec JobSpec) (JobStatus, bool, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, false, err
	}
	key := spec.Key()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return JobStatus{}, false, ErrClosed
	}
	if prior, ok := e.byKey[key]; ok && dedupTarget(prior) {
		st := e.statusLocked(prior)
		e.mu.Unlock()
		e.metrics.jobSubmitted(true)
		e.trace.Append(trace.Event{Kind: trace.KindSubmit, Job: st.ID, Name: "dedup"})
		e.log.Debug("job dedup", "job", st.ID, "state", string(st.State))
		return st, true, nil
	}
	e.mu.Unlock()

	// Pin the graph for the job's whole lifetime: from this point until
	// completion the registry cannot evict it.
	acqStart := time.Now()
	h, err := e.reg.Acquire(spec.GraphID)
	if err != nil {
		return JobStatus{}, false, err
	}
	acqDur := time.Since(acqStart)

	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		ID:          "j" + strconv.FormatInt(e.nextID.Add(1), 10),
		Spec:        spec,
		state:       StateQueued,
		submittedAt: time.Now(),
		handle:      h,
		ctx:         ctx,
		cancel:      cancel,
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		h.Release()
		cancel()
		return JobStatus{}, false, ErrClosed
	}
	// Re-check the key: a racing submit may have won while we acquired.
	if prior, ok := e.byKey[key]; ok && dedupTarget(prior) {
		st := e.statusLocked(prior)
		e.mu.Unlock()
		h.Release()
		cancel()
		e.metrics.jobSubmitted(true)
		e.trace.Append(trace.Event{Kind: trace.KindSubmit, Job: st.ID, Name: "dedup"})
		e.log.Debug("job dedup", "job", st.ID, "state", string(st.State))
		return st, true, nil
	}
	// Admission control before the durable write: a full queue is the
	// common overload signal and must not cost an fsync per rejection.
	if len(e.queue) == cap(e.queue) {
		e.mu.Unlock()
		h.Release()
		cancel()
		e.metrics.admissionRejectedEvent()
		return JobStatus{}, false, ErrQueueFull
	}
	// Claim the dedup key now so concurrent equal submissions absorb
	// into this job while its accept record is being fsync'd; the job
	// is not yet visible to Status/Cancel (the caller has no id until
	// we return), so the journal I/O below runs outside the lock.
	e.byKey[key] = job
	e.mu.Unlock()

	if e.journal != nil {
		// The accept record is on disk — fsync'd — before the caller
		// sees the ack and before any worker can complete the job, so
		// "acknowledged implies eventually served" survives kill -9 and
		// completion markers never precede their accepts.
		if jerr := e.journal.Accept(job.ID, spec); jerr != nil {
			e.metrics.persistError()
			e.failUnstarted(job, "journal append failed: "+jerr.Error())
			h.Release()
			cancel()
			return JobStatus{}, false, fmt.Errorf("service: journaling job: %w", jerr)
		}
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.completeAlways(job.ID)
		e.failUnstarted(job, "engine closed")
		h.Release()
		cancel()
		return JobStatus{}, false, ErrClosed
	}
	select {
	case e.queue <- job:
	default:
		// The queue filled while the accept record was written; mark
		// the journal complete so the rejection is not "recovered" into
		// an execution the caller was told never happened.
		e.mu.Unlock()
		e.completeAlways(job.ID)
		e.failUnstarted(job, "queue full")
		h.Release()
		cancel()
		e.metrics.admissionRejectedEvent()
		return JobStatus{}, false, ErrQueueFull
	}
	e.jobs[job.ID] = job
	st := e.statusLocked(job)
	e.mu.Unlock()
	e.metrics.jobSubmitted(false)
	e.trace.Append(trace.Event{Kind: trace.KindSubmit, Job: job.ID, Name: string(spec.Problem)})
	e.trace.Append(trace.Event{Kind: trace.KindCheckout, Job: job.ID, Name: spec.GraphID,
		DurMS: float64(acqDur) / float64(time.Millisecond)})
	e.log.Debug("job submitted", "job", job.ID, "graph", spec.GraphID,
		"problem", string(spec.Problem), "algorithm", spec.Plan.Algorithm.String())
	return st, false, nil
}

// failUnstarted finalizes a job that was never enqueued: it becomes a
// resident failed job — so any caller that dedup'd onto it while its
// accept record was in flight still resolves the id — and releases its
// dedup key so the next equal submission retries.
func (e *Engine) failUnstarted(job *Job, msg string) {
	e.mu.Lock()
	job.state = StateFailed
	job.err = msg
	job.finishedAt = time.Now()
	e.jobs[job.ID] = job
	e.dropKeyLocked(job)
	e.mu.Unlock()
	e.metrics.jobFinished(job.Spec.Problem, StateFailed, false, nil, 0, 0)
}

// completeAlways writes a journal completion marker regardless of drain
// state; used when an acceptance is revoked before any caller saw the
// ack, and for explicit user cancellations (which must not be undone by
// recovery).
func (e *Engine) completeAlways(id string) {
	if e.journal == nil {
		return
	}
	if err := e.journal.Complete(id); err != nil {
		e.metrics.persistError()
	}
}

// completeFinished marks a journaled job's terminal transition. Jobs
// cancelled by a drain in progress keep their accept record open on
// purpose: the drain is crash-equivalent for them, and the journal's
// promise is that an acknowledged job is eventually served.
func (e *Engine) completeFinished(id string, state JobState) {
	if e.journal == nil {
		return
	}
	if state == StateCancelled {
		e.mu.Lock()
		shuttingDown := e.shuttingDown
		e.mu.Unlock()
		if shuttingDown {
			return
		}
	}
	if err := e.journal.Complete(id); err != nil {
		e.metrics.persistError()
	}
}

// Recover re-enqueues a job the journal still owes from a previous
// process: it runs under its original id, so clients polling across the
// restart converge, and recomputation (not output replay) serves it —
// determinism makes the recomputed bytes identical. Specs that no
// longer validate or name a graph the blob tier cannot produce become
// resident failed jobs, completing their journal debt.
func (e *Engine) Recover(id string, spec JobSpec) error {
	// Keep the id generator ahead of every recovered id so fresh
	// submissions never collide with re-enqueued ones.
	if n, err := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64); err == nil {
		for {
			cur := e.nextID.Load()
			if cur >= n || e.nextID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	fail := func(msg string) {
		job := &Job{ID: id, Spec: spec}
		e.failUnstarted(job, msg)
		e.completeAlways(id)
	}
	if err := spec.Validate(); err != nil {
		fail("unrecoverable: " + err.Error())
		return err
	}
	h, err := e.reg.Acquire(spec.GraphID)
	if err != nil {
		fail("unrecoverable: " + err.Error())
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		ID:          id,
		Spec:        spec,
		state:       StateQueued,
		submittedAt: time.Now(),
		handle:      h,
		ctx:         ctx,
		cancel:      cancel,
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		h.Release()
		cancel()
		return ErrClosed
	}
	select {
	case e.queue <- job:
	default:
		e.mu.Unlock()
		h.Release()
		cancel()
		fail("unrecoverable: queue full at recovery")
		return ErrQueueFull
	}
	e.jobs[job.ID] = job
	if key := spec.Key(); e.byKey[key] == nil {
		e.byKey[key] = job
	}
	e.mu.Unlock()
	e.metrics.jobRecovered()
	e.trace.Append(trace.Event{Kind: trace.KindSubmit, Job: id, Name: "recover"})
	e.log.Info("job recovered", "job", id, "graph", spec.GraphID, "problem", string(spec.Problem))
	return nil
}

// RetryAfterSeconds estimates how long a rejected submitter should wait
// before retrying, from the observed drain rate: the time for the
// current queue (plus the retrier) to drain at the recent pace, clamped
// to [1, 60] seconds. With no completed jobs to estimate from it
// answers 1.
func (e *Engine) RetryAfterSeconds() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	queued := len(e.queue)
	n := len(e.doneTimes)
	if n < 2 {
		return 1
	}
	span := e.doneTimes[n-1].Sub(e.doneTimes[0]).Seconds()
	if span <= 0 {
		return 1
	}
	rate := float64(n-1) / span // completions per second
	secs := int(math.Ceil(float64(queued+1) / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// recordCompletion feeds the drain-rate ring; callers hold e.mu.
func (e *Engine) recordCompletionLocked(t time.Time) {
	const ringCap = 64
	e.doneTimes = append(e.doneTimes, t)
	if len(e.doneTimes) > ringCap {
		e.doneTimes = e.doneTimes[len(e.doneTimes)-ringCap:]
	}
}

// Status returns the current state of a job.
func (e *Engine) Status(id string) (JobStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	job, ok := e.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	return e.statusLocked(job), nil
}

// Cancel cancels a job. A queued job transitions to cancelled
// immediately and releases its graph pin; a running job has its
// context cancelled and transitions once its round loop observes the
// cancellation — within one round of its algorithm. Cancelling an
// already-cancelled job is a no-op; cancelling a done or failed job
// returns ErrJobFinished with the final status.
func (e *Engine) Cancel(id string) (JobStatus, error) {
	e.mu.Lock()
	job, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	switch job.state {
	case StateDone, StateFailed, StateDeadline:
		st := e.statusLocked(job)
		e.mu.Unlock()
		return st, fmt.Errorf("%w: %q is %s", ErrJobFinished, id, st.State)
	case StateCancelled:
		st := e.statusLocked(job)
		e.mu.Unlock()
		return st, nil
	case StateQueued:
		job.state = StateCancelled
		job.err = "cancelled while queued"
		job.finishedAt = time.Now()
		job.cancel()
		e.dropKeyLocked(job)
		st := e.statusLocked(job)
		e.mu.Unlock()
		// The worker that later pops this job sees the state and skips
		// it; release the pin now so the graph is evictable immediately.
		job.handle.Release()
		// An explicit cancellation is a served outcome: mark the journal
		// so recovery does not resurrect a job the user killed.
		e.completeAlways(job.ID)
		e.metrics.jobCancelled()
		return st, nil
	default: // running
		job.cancel()
		// Stop absorbing duplicate submissions immediately: the job is
		// doomed, and a same-key submission arriving before its round
		// loop observes the cancellation must start a fresh execution
		// rather than dedup onto a job that will never produce a result.
		e.dropKeyLocked(job)
		st := e.statusLocked(job)
		e.mu.Unlock()
		return st, nil
	}
}

// Result returns the marshaled result payload of a done job, or the
// job's status when it is not done yet (second return) so callers can
// distinguish pending from missing.
func (e *Engine) Result(id string) ([]byte, JobStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	job, ok := e.jobs[id]
	if !ok {
		return nil, JobStatus{}, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	st := e.statusLocked(job)
	if job.state != StateDone {
		return nil, st, nil
	}
	return job.result, st, nil
}

func (e *Engine) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:          job.ID,
		GraphID:     job.Spec.GraphID,
		Problem:     job.Spec.Problem,
		Plan:        job.Spec.Plan,
		State:       job.state,
		Error:       job.err,
		SubmittedAt: job.submittedAt,
	}
	if rounds := job.progRounds.Load(); rounds > 0 {
		st.Progress = &JobProgress{
			Rounds:          rounds,
			PrefixSize:      job.progPrefix.Load(),
			Attempted:       job.progAttempted.Load(),
			Resolved:        job.progResolved.Load(),
			EdgeInspections: job.progInspections.Load(),
			CheckMS:         float64(job.progCheckNS.Load()) / 1e6,
			CommitMS:        float64(job.progCommitNS.Load()) / 1e6,
			ResetMS:         float64(job.progResetNS.Load()) / 1e6,
			SlideMS:         float64(job.progSlideNS.Load()) / 1e6,
			RetryTail:       job.progRetryTail.Load(),
		}
	}
	if !job.startedAt.IsZero() {
		st.QueueMS = float64(job.startedAt.Sub(job.submittedAt)) / float64(time.Millisecond)
	}
	if !job.finishedAt.IsZero() && !job.startedAt.IsZero() {
		st.RunMS = float64(job.finishedAt.Sub(job.startedAt)) / float64(time.Millisecond)
	}
	return st
}

// stateCounts returns the number of resident jobs in each state.
func (e *Engine) stateCounts() (queued, running, done, failed, cancelled, deadline int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		case StateDone:
			done++
		case StateFailed:
			failed++
		case StateCancelled:
			cancelled++
		case StateDeadline:
			deadline++
		}
	}
	return
}

// Close stops the engine immediately: equivalent to Drain(0).
func (e *Engine) Close() { e.Drain(0) }

// Drain stops the engine gracefully: new submissions are refused at
// once, then in-flight and queued work gets up to window to finish
// naturally before whatever remains is cancelled (their round loops
// abort within one round) and workers and the janitor are joined.
// Journaled jobs cancelled by the drain keep their accept records, so
// the next boot re-serves them — a drain that runs out of window
// degrades into a clean crash, never into lost acknowledgements. Safe
// to call once; later calls are no-ops.
func (e *Engine) Drain(window time.Duration) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.shuttingDown = true
	e.mu.Unlock()

	deadline := time.Now().Add(window)
	for window > 0 {
		e.mu.Lock()
		busy := false
		for _, j := range e.jobs {
			if j.state == StateQueued || j.state == StateRunning {
				busy = true
				break
			}
		}
		e.mu.Unlock()
		if !busy || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	e.mu.Lock()
	// Cancel what the window did not drain so shutdown is bounded by
	// one round, not by the longest job.
	for _, j := range e.jobs {
		if j.state == StateRunning || j.state == StateQueued {
			j.cancel()
		}
	}
	e.mu.Unlock()
	close(e.stop)
	close(e.queue)
	e.wg.Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	// The worker's Solver persists across every job this worker runs:
	// frontier/flag/reservation buffers and derived priority orders are
	// allocated by the first large job and reused by all later ones on
	// same-or-smaller inputs.
	solver := greedy.NewSolver()
	for job := range e.queue {
		e.mu.Lock()
		if job.state != StateQueued {
			// Cancelled while queued; its pin is already released.
			e.mu.Unlock()
			continue
		}
		select {
		case <-e.stop:
			job.state = StateCancelled
			job.err = "engine closed"
			job.finishedAt = time.Now()
			e.mu.Unlock()
			job.handle.Release()
			continue
		default:
		}
		job.state = StateRunning
		job.startedAt = time.Now()
		e.mu.Unlock()
		queueMS := float64(job.startedAt.Sub(job.submittedAt)) / float64(time.Millisecond)
		e.trace.Append(trace.Event{Kind: trace.KindQueue, Job: job.ID, DurMS: queueMS})
		e.log.Debug("job running", "job", job.ID, "queue_ms", queueMS)
		e.run(job, solver)
	}
}

// run executes one job on the worker's solver and records its outcome.
func (e *Engine) run(job *Job, solver *greedy.Solver) {
	// A per-job deadline wraps the job's own cancellation context, so
	// timeout and explicit cancel both abort the round loop the same
	// way; which one fired is disambiguated below.
	runCtx := job.ctx
	var cancelTimeout context.CancelFunc
	if t := job.Spec.TimeoutMS; t > 0 {
		runCtx, cancelTimeout = context.WithTimeout(job.ctx, time.Duration(t)*time.Millisecond)
	}
	payload, err := e.execute(runCtx, job, solver)
	if cancelTimeout != nil {
		cancelTimeout()
	}

	now := time.Now()
	e.mu.Lock()
	job.finishedAt = now
	switch {
	case err == nil:
		payload.RunMS = float64(now.Sub(job.startedAt)) / float64(time.Millisecond)
		payload.JobID = job.ID
		raw, merr := json.Marshal(payload)
		if merr != nil {
			job.state = StateFailed
			job.err = merr.Error()
		} else {
			job.state = StateDone
			job.result = raw
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The deadline state is claimed only when the job's own budget
		// fired: the outer context still live distinguishes a timeout
		// from an explicit cancel (or engine shutdown) that happened to
		// land while a deadline was also configured.
		if errors.Is(err, context.DeadlineExceeded) && cancelTimeout != nil && job.ctx.Err() == nil {
			job.state = StateDeadline
			job.err = fmt.Sprintf("deadline exceeded after %dms", job.Spec.TimeoutMS)
		} else {
			job.state = StateCancelled
			job.err = "cancelled while running"
		}
	default:
		job.state = StateFailed
		job.err = err.Error()
	}
	run := job.finishedAt.Sub(job.startedAt)
	e2e := job.finishedAt.Sub(job.submittedAt)
	state := job.state
	errMsg := job.err
	if state != StateQueued && state != StateRunning {
		e.recordCompletionLocked(now)
	}
	if state == StateFailed || state == StateCancelled || state == StateDeadline {
		// A terminal non-answer stops absorbing submissions right away.
		e.dropKeyLocked(job)
	}
	e.mu.Unlock()
	e.completeFinished(job.ID, state)

	job.cancel() // release the context's resources
	job.handle.Release()
	// Dynamic jobs never run the adaptive schedule (the maintainer's
	// restricted round loop has no window controller), so they must
	// not count toward adaptive_executed even if the plan carries the
	// flag.
	adaptiveRan := job.Spec.Plan.AdaptivePrefix && !job.Spec.Plan.Dynamic
	var repair *dynamic.RepairStats
	if payload.Repaired {
		repair = payload.Repair
	}
	e.metrics.jobFinished(job.Spec.Problem, state, adaptiveRan, repair, run, e2e)

	runMS := float64(run) / float64(time.Millisecond)
	e2eMS := float64(e2e) / float64(time.Millisecond)
	e.trace.Append(trace.Event{Kind: trace.KindRun, Job: job.ID, DurMS: runMS})
	e.trace.Append(trace.Event{Kind: trace.KindDone, Job: job.ID, Name: string(state), DurMS: e2eMS})
	if state == StateFailed {
		e.log.Warn("job failed", "job", job.ID, "error", errMsg, "run_ms", runMS, "e2e_ms", e2eMS)
	} else {
		e.log.Debug("job finished", "job", job.ID, "state", string(state), "run_ms", runMS, "e2e_ms", e2eMS)
	}
}

// execute runs the computation under ctx (the job's context, possibly
// narrowed by its deadline); panics in the algorithm layers are
// converted to job failures rather than taking down the daemon.
func (e *Engine) execute(ctx context.Context, job *Job, solver *greedy.Solver) (payload ResultPayload, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: job panicked: %v", r)
		}
	}()
	// Chaos harness hook: a worker.run failpoint fails (or, in panic
	// mode, panics inside the recover guard above) the job before any
	// algorithm work happens.
	if ferr := fault.Inject(fault.WorkerRun); ferr != nil {
		return payload, ferr
	}
	h := job.handle
	g := h.Graph()
	plan := job.Spec.Plan
	// Observe round progress into the job's atomics: Status reads them
	// live while the round loop runs. The trace stream rides the same
	// observer, gated by one lock-free modulo test per round so an
	// unsampled round does no trace work at all.
	opts := append(plan.Options(), greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
		job.progRounds.Store(ri.Round)
		job.progPrefix.Store(int64(ri.PrefixSize))
		job.progAttempted.Add(int64(ri.Attempted))
		job.progResolved.Add(int64(ri.Accepted))
		job.progInspections.Add(ri.EdgeInspections)
		profiled := ri.CheckNS|ri.CommitNS|ri.ResetNS|ri.SlideNS != 0
		if profiled {
			job.progCheckNS.Add(ri.CheckNS)
			job.progCommitNS.Add(ri.CommitNS)
			job.progResetNS.Add(ri.ResetNS)
			job.progSlideNS.Add(ri.SlideNS)
			job.progRetryTail.Store(int64(ri.RetryTail))
		}
		if e.trace.ShouldSampleRound(ri.Round) {
			e.trace.Append(trace.Event{
				Kind:        trace.KindRound,
				Job:         job.ID,
				Round:       ri.Round,
				Prefix:      ri.PrefixSize,
				Attempted:   int64(ri.Attempted),
				Accepted:    int64(ri.Accepted),
				Inspections: ri.EdgeInspections,
			})
			if profiled {
				e.trace.Append(trace.Event{
					Kind:      trace.KindPhase,
					Job:       job.ID,
					Round:     ri.Round,
					Prefix:    ri.PrefixSize,
					CheckMS:   float64(ri.CheckNS) / 1e6,
					CommitMS:  float64(ri.CommitNS) / 1e6,
					ResetMS:   float64(ri.ResetNS) / 1e6,
					SlideMS:   float64(ri.SlideNS) / 1e6,
					RetryTail: ri.RetryTail,
				})
			}
		}
	}))
	// Phase profiling rides the same sampling gate as the round stream:
	// when round events are being recorded, pay for the clock reads and
	// get the per-phase decomposition; otherwise the engine performs no
	// clock reads at all and the dark path stays byte-identical.
	if e.trace.RoundSampleEvery() > 0 {
		opts = append(opts, greedy.WithPhaseProfile())
	}
	payload = ResultPayload{
		GraphID: h.ID(),
		Problem: job.Spec.Problem,
		Plan:    plan,
		N:       g.NumVertices(),
		M:       g.NumEdges(),
	}
	// Dynamic plans route through the session cache: repair from an
	// ancestor version when possible, recompute (and seed a session)
	// otherwise.
	if plan.Dynamic {
		return e.executeDynamic(ctx, job, payload)
	}
	switch job.Spec.Problem {
	case ProblemMIS:
		res, rerr := solver.MIS(ctx, g, opts...)
		if rerr != nil {
			return payload, rerr
		}
		payload.Size = res.Size()
		payload.Checksum = membershipChecksum(res.InSet)
		payload.Stats = res.Stats
		if len(res.Set) <= memberCap {
			payload.Members = res.Set
		} else {
			payload.MembersOmitted = true
		}
	case ProblemMM:
		res, rerr := solver.MM(ctx, h.EdgeList(), opts...)
		if rerr != nil {
			return payload, rerr
		}
		payload.Size = res.Size()
		payload.Checksum = membershipChecksum(res.InMatching)
		payload.Stats = res.Stats
		if len(res.Pairs) <= memberCap/2 {
			payload.MemberPairs = pairsOf(res.Pairs)
		} else {
			payload.MembersOmitted = true
		}
	case ProblemSF:
		res, rerr := solver.SF(ctx, h.EdgeList(), opts...)
		if rerr != nil {
			return payload, rerr
		}
		payload.Size = res.Size()
		payload.Checksum = membershipChecksum(res.InForest)
		payload.Stats = res.Stats
		if len(res.Edges) <= memberCap/2 {
			payload.MemberPairs = pairsOf(res.Edges)
		} else {
			payload.MembersOmitted = true
		}
	case ProblemColoring:
		res, rerr := solver.Coloring(ctx, g, opts...)
		if rerr != nil {
			return payload, rerr
		}
		// Size is the number of colors used — the figure of merit for a
		// coloring; Members carries the full color assignment (one int32
		// per vertex, not a membership subset).
		payload.Size = res.NumColors
		payload.Checksum = colorsChecksum(res.Colors)
		payload.Stats = res.Stats
		if len(res.Colors) <= memberCap {
			payload.Members = res.Colors
		} else {
			payload.MembersOmitted = true
		}
	case ProblemHittingSet:
		res, rerr := solver.HittingSet(ctx, greedy.HittingSystemFromEdges(h.EdgeList()), opts...)
		if rerr != nil {
			return payload, rerr
		}
		payload.Size = res.Size()
		payload.Checksum = membershipChecksum(res.InSet)
		payload.Stats = res.Stats
		if len(res.Set) <= memberCap {
			payload.Members = res.Set
		} else {
			payload.MembersOmitted = true
		}
	default:
		return payload, fmt.Errorf("service: unknown problem %q", job.Spec.Problem)
	}
	return payload, nil
}

// checkoutSession removes and returns the cached session for key, if
// any. Checkout is exclusive: a Maintainer is not safe for concurrent
// use, so it leaves the cache while a worker advances or reads it.
func (e *Engine) checkoutSession(key sessKey) *dynamic.Maintainer {
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	mt, ok := e.sessions[key]
	if !ok {
		return nil
	}
	delete(e.sessions, key)
	for i, k := range e.sessLRU {
		if k == key {
			e.sessLRU = append(e.sessLRU[:i], e.sessLRU[i+1:]...)
			break
		}
	}
	return mt
}

// checkinSession parks a session under key, evicting the least
// recently used entry past the cap. If a racing worker already parked
// one for the key, the resident session wins (both describe the same
// deterministic state).
func (e *Engine) checkinSession(key sessKey, mt *dynamic.Maintainer) {
	if e.sessCap == 0 || mt == nil {
		return
	}
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	if _, ok := e.sessions[key]; ok {
		return
	}
	e.sessions[key] = mt
	e.sessLRU = append(e.sessLRU, key)
	for len(e.sessLRU) > e.sessCap {
		victim := e.sessLRU[0]
		e.sessLRU = e.sessLRU[1:]
		delete(e.sessions, victim)
	}
}

// lineageSession walks the version lineage of key.graphID upward
// looking for a cached session at an ancestor. It returns the
// checked-out session, the ancestor's id, and the patch chain (oldest
// first) that advances it to key.graphID. The walk is depth-capped so
// a corrupt lineage index cannot spin a worker.
func (e *Engine) lineageSession(key sessKey) (*dynamic.Maintainer, string, [][]dynamic.Update) {
	var chain [][]dynamic.Update
	id := key.graphID
	for depth := 0; depth < 32; depth++ {
		parent, updates, ok := e.reg.Lineage(id)
		if !ok {
			return nil, "", nil
		}
		chain = append(chain, nil)
		copy(chain[1:], chain)
		chain[0] = updates
		id = parent
		if mt := e.checkoutSession(sessKey{graphID: id, problem: key.problem, seed: key.seed}); mt != nil {
			return mt, id, chain
		}
	}
	return nil, "", nil
}

// executeDynamic answers a dynamic-plan job from the session cache:
// an exact-version session is a free read; an ancestor session is
// advanced by replaying the recorded patches (change-driven frontier
// repair — the work recorded in payload.Repair stays proportional to
// the flipped damage region); otherwise the job computes from scratch
// and seeds a session for its version so later jobs on patched
// descendants can repair.
func (e *Engine) executeDynamic(ctx context.Context, job *Job, payload ResultPayload) (ResultPayload, error) {
	h := job.handle
	g := h.Graph()
	plan := job.Spec.Plan
	problem := job.Spec.Problem
	payload.Dynamic = true
	key := sessKey{graphID: h.ID(), problem: problem, seed: plan.Seed}

	mt := e.checkoutSession(key)
	resolution := "hit" // exact-version session checkout: a free read
	if mt == nil {
		prior, from, chain := e.lineageSession(key)
		if prior != nil {
			repair := dynamic.RepairStats{}
			advanced := prior
			for i, batch := range chain {
				st, err := advanced.Apply(ctx, batch)
				repair.Add(st)
				cost := st.MIS
				if problem == ProblemMM {
					cost = st.MM
				}
				e.trace.Append(trace.Event{
					Kind:         trace.KindRepair,
					Job:          job.ID,
					Batch:        i + 1,
					Seeds:        cost.Seeds,
					Visited:      cost.Visited,
					Flipped:      cost.Flipped,
					FrontierPeak: cost.FrontierPeak,
					Changed:      cost.Changed,
				})
				if err != nil {
					// The session is inconsistent (cancelled mid-repair)
					// or cannot accept the patch; drop it. Propagate
					// cancellation, otherwise recompute from scratch.
					advanced = nil
					if cerr := ctx.Err(); cerr != nil {
						return payload, cerr
					}
					break
				}
			}
			// The advanced session must describe exactly this version;
			// the edge count is a cheap invariant check against a stale
			// or corrupted lineage chain.
			if advanced != nil && advanced.NumEdges() == g.NumEdges() {
				mt = advanced
				resolution = "replay"
				payload.Repaired = true
				payload.RepairedFrom = from
				payload.RepairBatches = len(chain)
				payload.Repair = &repair
				cost := repair.MIS
				if problem == ProblemMM {
					cost = repair.MM
				}
				payload.Stats = greedy.Stats{Rounds: cost.Rounds, Attempts: cost.Attempts, EdgeInspections: cost.Inspections}
			}
		}
	}
	if mt == nil {
		resolution = "scratch"
		fresh, err := dynamic.NewMaintainer(ctx, g, dynamic.Config{
			MIS:   problem == ProblemMIS,
			MM:    problem == ProblemMM,
			Seed:  plan.Seed,
			Grain: plan.Grain,
		})
		if err != nil {
			return payload, err
		}
		mt = fresh
		misStats, mmStats := mt.InitStats()
		if problem == ProblemMIS {
			payload.Stats = misStats
		} else {
			payload.Stats = mmStats
		}
	}
	// (A checkout hit at the exact version reads the maintained state
	// with zero Stats: no work was performed.)
	e.trace.Append(trace.Event{Kind: trace.KindResolve, Job: job.ID, Name: resolution,
		Batch: payload.RepairBatches})
	switch problem {
	case ProblemMIS:
		res := mt.MISResult()
		payload.Size = res.Size()
		payload.Checksum = membershipChecksum(res.InSet)
		if len(res.Set) <= memberCap {
			payload.Members = res.Set
		} else {
			payload.MembersOmitted = true
		}
	default: // ProblemMM (Validate rejects dynamic SF)
		pairs := mt.MatchingPairs()
		payload.Size = len(pairs)
		payload.Checksum = pairsChecksum(pairs)
		if len(pairs) <= memberCap/2 {
			payload.MemberPairs = pairsOf(pairs)
		} else {
			payload.MembersOmitted = true
		}
	}
	e.checkinSession(key, mt)
	return payload, nil
}

// pairsChecksum commits to a matching by hashing its canonical sorted
// pair list — dynamic matchings live in slot form and have no
// canonical edge-id membership vector to feed membershipChecksum.
func pairsChecksum(pairs []graph.Edge) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, e := range pairs {
		binary.LittleEndian.PutUint32(buf[:4], uint32(e.U))
		binary.LittleEndian.PutUint32(buf[4:], uint32(e.V))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func pairsOf(edges []graph.Edge) [][2]int32 {
	out := make([][2]int32, len(edges))
	for i, e := range edges {
		out[i] = [2]int32{e.U, e.V}
	}
	return out
}

// colorsChecksum commits to a full color assignment with FNV-1a over
// the little-endian int32 colors — the coloring analogue of
// membershipChecksum (whose vector is boolean membership, not values).
func colorsChecksum(colors []int32) string {
	h := fnv.New64a()
	buf := make([]byte, 0, 1<<14)
	var b [4]byte
	for _, c := range colors {
		binary.LittleEndian.PutUint32(b[:], uint32(c))
		buf = append(buf, b[:]...)
		if len(buf)+4 > cap(buf) {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	return fmt.Sprintf("%016x", h.Sum64())
}

// membershipChecksum commits to a full membership vector with FNV-1a,
// so clients can compare results across submissions without shipping
// the whole set. The vector is hashed in chunks rather than one
// interface call per element: this runs once per executed job over up
// to n elements and sits on the worker hot path.
func membershipChecksum(in []bool) string {
	h := fnv.New64a()
	buf := make([]byte, 0, 1<<14)
	for _, x := range in {
		b := byte(0)
		if x {
			b = 1
		}
		buf = append(buf, b)
		if len(buf) == cap(buf) {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	return fmt.Sprintf("%016x", h.Sum64())
}

// janitor reaps finished jobs past the TTL.
func (e *Engine) janitor() {
	defer e.wg.Done()
	period := e.ttl / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Minute {
		period = time.Minute
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-e.ttl)
			reaped := 0
			e.mu.Lock()
			for id, j := range e.jobs {
				finished := j.state == StateDone || j.state == StateFailed ||
					j.state == StateCancelled || j.state == StateDeadline
				if finished && !j.finishedAt.IsZero() && j.finishedAt.Before(cutoff) {
					delete(e.jobs, id)
					if e.byKey[j.Spec.Key()] == j {
						delete(e.byKey, j.Spec.Key())
					}
					reaped++
				}
			}
			e.mu.Unlock()
			if reaped > 0 {
				e.metrics.jobsReaped(reaped)
			}
		}
	}
}
