package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	greedy "repro"
	"repro/internal/graph"
)

// Problem names a computation the service can run.
type Problem string

// The three problems of the paper: maximal independent set, maximal
// matching, and the §7 spanning forest extension.
const (
	ProblemMIS Problem = "mis"
	ProblemMM  Problem = "mm"
	ProblemSF  Problem = "sf"
)

// ParseProblem validates a problem name.
func ParseProblem(s string) (Problem, error) {
	switch Problem(s) {
	case ProblemMIS, ProblemMM, ProblemSF:
		return Problem(s), nil
	default:
		return "", fmt.Errorf("service: unknown problem %q (want mis|mm|sf)", s)
	}
}

// JobState is the lifecycle state of a job.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Job engine errors.
var (
	ErrQueueFull   = errors.New("service: job queue full")
	ErrJobNotFound = errors.New("service: job not found (unknown id or expired)")
	ErrClosed      = errors.New("service: engine closed")
)

// JobSpec identifies a deterministic computation: which graph, which
// problem, and the resolved algorithm configuration. Two jobs with
// equal specs produce bit-identical results (the paper's determinism
// guarantee), which is why Key is a sound idempotency key.
type JobSpec struct {
	GraphID    string           `json:"graph_id"`
	Problem    Problem          `json:"problem"`
	Algorithm  greedy.Algorithm `json:"-"`
	Seed       uint64           `json:"seed"`
	PrefixFrac float64          `json:"prefix_frac,omitempty"`
	PrefixSize int              `json:"prefix_size,omitempty"`
}

// Key returns the idempotency key (graphID, problem, algorithm, seed,
// prefix): submissions with equal keys are deduplicated into one
// execution.
func (s JobSpec) Key() string {
	return fmt.Sprintf("%s|%s|%s|%d|%g|%d",
		s.GraphID, s.Problem, s.Algorithm, s.Seed, s.PrefixFrac, s.PrefixSize)
}

// Validate rejects specs no algorithm can run.
func (s JobSpec) Validate() error {
	if _, err := ParseProblem(string(s.Problem)); err != nil {
		return err
	}
	if s.Algorithm == greedy.AlgoLuby && s.Problem != ProblemMIS {
		return fmt.Errorf("service: algorithm %q applies to MIS only", s.Algorithm)
	}
	// The spanning-forest facade implements only the sequential scan
	// and the prefix-based algorithm; accepting other names would run
	// prefix while reporting a different algorithm in the payload and
	// split one computation across several dedup keys.
	if s.Problem == ProblemSF && s.Algorithm != greedy.AlgoPrefix && s.Algorithm != greedy.AlgoSequential {
		return fmt.Errorf("service: spanning forest supports algorithms prefix|sequential, not %q", s.Algorithm)
	}
	if s.PrefixFrac < 0 || s.PrefixFrac > 1 {
		return fmt.Errorf("service: prefix_frac %g outside [0,1]", s.PrefixFrac)
	}
	if s.PrefixSize < 0 {
		return fmt.Errorf("service: negative prefix_size %d", s.PrefixSize)
	}
	return nil
}

// Job is one tracked computation. Fields other than ID and Spec are
// guarded by the engine mutex.
type Job struct {
	ID   string
	Spec JobSpec

	state       JobState
	err         string
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	result      []byte // marshaled ResultPayload, set once on success

	handle *Handle // pin on the input graph from submit to completion
}

// JobStatus is the public JSON view of a job.
type JobStatus struct {
	ID          string    `json:"job_id"`
	GraphID     string    `json:"graph_id"`
	Problem     Problem   `json:"problem"`
	Algorithm   string    `json:"algorithm"`
	Seed        uint64    `json:"seed"`
	PrefixFrac  float64   `json:"prefix_frac,omitempty"`
	PrefixSize  int       `json:"prefix_size,omitempty"`
	State       JobState  `json:"state"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	QueueMS     float64   `json:"queue_ms,omitempty"`
	RunMS       float64   `json:"run_ms,omitempty"`
}

// ResultPayload is the JSON body served by GET /v1/jobs/{id}/result.
// It is marshaled exactly once per execution, so every read of a
// deduplicated job returns byte-identical bytes.
type ResultPayload struct {
	JobID     string       `json:"job_id"`
	GraphID   string       `json:"graph_id"`
	Problem   Problem      `json:"problem"`
	Algorithm string       `json:"algorithm"`
	Seed      uint64       `json:"seed"`
	N         int          `json:"n"`
	M         int          `json:"m"`
	Size      int          `json:"size"`
	Checksum  string       `json:"checksum"`
	Stats     greedy.Stats `json:"stats"`
	RunMS     float64      `json:"run_ms"`
	// Members is the selected set: vertex ids for MIS, edge endpoint
	// pairs for MM and SF. Omitted above memberCap entries (Checksum
	// still commits to the full membership).
	Members        []int32    `json:"members,omitempty"`
	MemberPairs    [][2]int32 `json:"member_pairs,omitempty"`
	MembersOmitted bool       `json:"members_omitted,omitempty"`
}

// memberCap bounds the membership list embedded in a result payload.
const memberCap = 1 << 20

// Engine runs jobs on a bounded worker pool with idempotency-key
// deduplication and a TTL result store.
type Engine struct {
	reg     *Registry
	metrics *Metrics
	ttl     time.Duration

	mu     sync.Mutex
	jobs   map[string]*Job
	byKey  map[string]*Job
	closed bool

	queue  chan *Job
	stop   chan struct{}
	wg     sync.WaitGroup
	nextID atomic.Int64
}

// EngineConfig configures an Engine.
type EngineConfig struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued jobs; 0 means 4096.
	QueueDepth int
	// ResultTTL is how long finished jobs are retained; 0 means 15m.
	ResultTTL time.Duration
}

// NewEngine starts an engine over reg. metrics may be nil.
func NewEngine(reg *Registry, metrics *Metrics, cfg EngineConfig) *Engine {
	if metrics == nil {
		metrics = NewMetrics()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4096
	}
	ttl := cfg.ResultTTL
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	e := &Engine{
		reg:     reg,
		metrics: metrics,
		ttl:     ttl,
		jobs:    make(map[string]*Job),
		byKey:   make(map[string]*Job),
		queue:   make(chan *Job, depth),
		stop:    make(chan struct{}),
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	e.wg.Add(1)
	go e.janitor()
	return e
}

// Submit registers a job for spec. If a queued, running, or completed
// job with the same idempotency key exists, that job is returned with
// deduped = true and no new execution happens. Failed jobs are not
// dedup targets: resubmitting retries.
func (e *Engine) Submit(spec JobSpec) (JobStatus, bool, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, false, err
	}
	key := spec.Key()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return JobStatus{}, false, ErrClosed
	}
	if prior, ok := e.byKey[key]; ok && prior.state != StateFailed {
		st := e.statusLocked(prior)
		e.mu.Unlock()
		e.metrics.jobSubmitted(true)
		return st, true, nil
	}
	e.mu.Unlock()

	// Pin the graph for the job's whole lifetime: from this point until
	// completion the registry cannot evict it.
	h, err := e.reg.Acquire(spec.GraphID)
	if err != nil {
		return JobStatus{}, false, err
	}

	job := &Job{
		ID:          "j" + strconv.FormatInt(e.nextID.Add(1), 10),
		Spec:        spec,
		state:       StateQueued,
		submittedAt: time.Now(),
		handle:      h,
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		h.Release()
		return JobStatus{}, false, ErrClosed
	}
	// Re-check the key: a racing submit may have won while we acquired.
	if prior, ok := e.byKey[key]; ok && prior.state != StateFailed {
		st := e.statusLocked(prior)
		e.mu.Unlock()
		h.Release()
		e.metrics.jobSubmitted(true)
		return st, true, nil
	}
	select {
	case e.queue <- job:
	default:
		e.mu.Unlock()
		h.Release()
		return JobStatus{}, false, ErrQueueFull
	}
	e.jobs[job.ID] = job
	e.byKey[key] = job
	st := e.statusLocked(job)
	e.mu.Unlock()
	e.metrics.jobSubmitted(false)
	return st, false, nil
}

// Status returns the current state of a job.
func (e *Engine) Status(id string) (JobStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	job, ok := e.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	return e.statusLocked(job), nil
}

// Result returns the marshaled result payload of a done job, or the
// job's status when it is not done yet (second return) so callers can
// distinguish pending from missing.
func (e *Engine) Result(id string) ([]byte, JobStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	job, ok := e.jobs[id]
	if !ok {
		return nil, JobStatus{}, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	st := e.statusLocked(job)
	if job.state != StateDone {
		return nil, st, nil
	}
	return job.result, st, nil
}

func (e *Engine) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:          job.ID,
		GraphID:     job.Spec.GraphID,
		Problem:     job.Spec.Problem,
		Algorithm:   job.Spec.Algorithm.String(),
		Seed:        job.Spec.Seed,
		PrefixFrac:  job.Spec.PrefixFrac,
		PrefixSize:  job.Spec.PrefixSize,
		State:       job.state,
		Error:       job.err,
		SubmittedAt: job.submittedAt,
	}
	if !job.startedAt.IsZero() {
		st.QueueMS = float64(job.startedAt.Sub(job.submittedAt)) / float64(time.Millisecond)
	}
	if !job.finishedAt.IsZero() && !job.startedAt.IsZero() {
		st.RunMS = float64(job.finishedAt.Sub(job.startedAt)) / float64(time.Millisecond)
	}
	return st
}

// stateCounts returns the number of resident jobs in each state.
func (e *Engine) stateCounts() (queued, running, done, failed int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		case StateDone:
			done++
		case StateFailed:
			failed++
		}
	}
	return
}

// Close drains no further work: queued jobs are abandoned (their graph
// pins released), workers and the janitor are stopped. Safe to call
// once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stop)
	close(e.queue)
	e.wg.Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for job := range e.queue {
		select {
		case <-e.stop:
			job.handle.Release()
			continue
		default:
		}
		e.run(job)
	}
}

// run executes one job and records its outcome.
func (e *Engine) run(job *Job) {
	e.mu.Lock()
	job.state = StateRunning
	job.startedAt = time.Now()
	e.mu.Unlock()

	payload, err := e.execute(job)

	now := time.Now()
	e.mu.Lock()
	job.finishedAt = now
	if err != nil {
		job.state = StateFailed
		job.err = err.Error()
	} else {
		payload.RunMS = float64(now.Sub(job.startedAt)) / float64(time.Millisecond)
		payload.JobID = job.ID
		raw, merr := json.Marshal(payload)
		if merr != nil {
			job.state = StateFailed
			job.err = merr.Error()
		} else {
			job.state = StateDone
			job.result = raw
		}
	}
	run := job.finishedAt.Sub(job.startedAt)
	e2e := job.finishedAt.Sub(job.submittedAt)
	failed := job.state == StateFailed
	e.mu.Unlock()

	job.handle.Release()
	e.metrics.jobFinished(job.Spec.Problem, failed, run, e2e)
}

// execute runs the computation; panics in the algorithm layers are
// converted to job failures rather than taking down the daemon.
func (e *Engine) execute(job *Job) (payload ResultPayload, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: job panicked: %v", r)
		}
	}()
	h := job.handle
	g := h.Graph()
	plan := greedy.Plan{
		Algorithm:  job.Spec.Algorithm,
		Seed:       job.Spec.Seed,
		PrefixFrac: job.Spec.PrefixFrac,
		PrefixSize: job.Spec.PrefixSize,
	}
	opts := plan.Options()
	payload = ResultPayload{
		GraphID:   h.ID(),
		Problem:   job.Spec.Problem,
		Algorithm: plan.Algorithm.String(),
		Seed:      plan.Seed,
		N:         g.NumVertices(),
		M:         g.NumEdges(),
	}
	switch job.Spec.Problem {
	case ProblemMIS:
		res := greedy.MaximalIndependentSet(g, opts...)
		payload.Size = res.Size()
		payload.Checksum = membershipChecksum(res.InSet)
		payload.Stats = res.Stats
		if len(res.Set) <= memberCap {
			payload.Members = res.Set
		} else {
			payload.MembersOmitted = true
		}
	case ProblemMM:
		res := greedy.MaximalMatchingEdges(h.EdgeList(), opts...)
		payload.Size = res.Size()
		payload.Checksum = membershipChecksum(res.InMatching)
		payload.Stats = res.Stats
		if len(res.Pairs) <= memberCap/2 {
			payload.MemberPairs = pairsOf(res.Pairs)
		} else {
			payload.MembersOmitted = true
		}
	case ProblemSF:
		res := greedy.SpanningForestEdges(h.EdgeList(), opts...)
		payload.Size = res.Size()
		payload.Checksum = membershipChecksum(res.InForest)
		payload.Stats = res.Stats
		if len(res.Edges) <= memberCap/2 {
			payload.MemberPairs = pairsOf(res.Edges)
		} else {
			payload.MembersOmitted = true
		}
	default:
		return payload, fmt.Errorf("service: unknown problem %q", job.Spec.Problem)
	}
	return payload, nil
}

func pairsOf(edges []graph.Edge) [][2]int32 {
	out := make([][2]int32, len(edges))
	for i, e := range edges {
		out[i] = [2]int32{e.U, e.V}
	}
	return out
}

// membershipChecksum commits to a full membership vector with FNV-1a,
// so clients can compare results across submissions without shipping
// the whole set. The vector is hashed in chunks rather than one
// interface call per element: this runs once per executed job over up
// to n elements and sits on the worker hot path.
func membershipChecksum(in []bool) string {
	h := fnv.New64a()
	buf := make([]byte, 0, 1<<14)
	for _, x := range in {
		b := byte(0)
		if x {
			b = 1
		}
		buf = append(buf, b)
		if len(buf) == cap(buf) {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	return fmt.Sprintf("%016x", h.Sum64())
}

// janitor reaps finished jobs past the TTL.
func (e *Engine) janitor() {
	defer e.wg.Done()
	period := e.ttl / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Minute {
		period = time.Minute
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-e.ttl)
			reaped := 0
			e.mu.Lock()
			for id, j := range e.jobs {
				if (j.state == StateDone || j.state == StateFailed) && j.finishedAt.Before(cutoff) {
					delete(e.jobs, id)
					if e.byKey[j.Spec.Key()] == j {
						delete(e.byKey, j.Spec.Key())
					}
					reaped++
				}
			}
			e.mu.Unlock()
			if reaped > 0 {
				e.metrics.jobsReaped(reaped)
			}
		}
	}
}
