package spanning

import (
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestRelaxedProducesValidSpanningForest(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Random(400, 1600, 1),
		graph.RMat(9, 1500, 2, graph.DefaultRMatOptions()),
		graph.Complete(40),
		graph.Star(50),
		graph.Cycle(60),
		graph.Grid2D(12, 13),
	} {
		el := g.EdgeList()
		ord := core.NewRandomOrder(el.NumEdges(), 7)
		want := SequentialSF(el, ord)
		for _, frac := range []float64{0.01, 0.2, 1.0} {
			got := PrefixSFRelaxed(el, ord, Options{PrefixFrac: frac})
			if !IsForest(el, got.InForest) {
				t.Fatalf("frac %v: relaxed result has a cycle", frac)
			}
			if !IsSpanning(el, got.InForest) {
				t.Fatalf("frac %v: relaxed result does not span", frac)
			}
			// Any two spanning forests of the same graph have the same
			// size (n - #components), even when the edge sets differ.
			if got.Size() != want.Size() {
				t.Fatalf("frac %v: relaxed forest size %d != %d", frac, got.Size(), want.Size())
			}
		}
	}
}

func TestRelaxedDeterministicForFixedPrefix(t *testing.T) {
	el, ord := instance(800, 4000, 3)
	first := PrefixSFRelaxed(el, ord, Options{PrefixSize: 128})
	for trial := 0; trial < 4; trial++ {
		again := PrefixSFRelaxed(el, ord, Options{PrefixSize: 128})
		if !again.Equal(first) {
			t.Fatalf("trial %d: relaxed forest changed across identical runs", trial)
		}
	}
	for _, procs := range []int{1, 2, 4} {
		old := runtime.GOMAXPROCS(procs)
		r := PrefixSFRelaxed(el, ord, Options{PrefixSize: 128})
		runtime.GOMAXPROCS(old)
		if !r.Equal(first) {
			t.Fatalf("procs %d: relaxed forest depends on thread count", procs)
		}
	}
}

func TestRelaxedPrefixOneIsSequential(t *testing.T) {
	// With window size 1 the relaxed protocol degenerates to the
	// sequential loop: one edge at a time, always the earliest, so the
	// result is the lexicographically-first forest.
	el, ord := instance(300, 1200, 5)
	want := SequentialSF(el, ord)
	got := PrefixSFRelaxed(el, ord, Options{PrefixSize: 1})
	if !got.Equal(want) {
		t.Error("relaxed with prefix 1 differs from sequential")
	}
}

func TestRelaxedQuick(t *testing.T) {
	f := func(rawN uint8, rawM uint16, seed uint64, rawPrefix uint8) bool {
		n := int(rawN%60) + 2
		maxM := n * (n - 1) / 2
		m := int(rawM) % (maxM + 1)
		g := graph.Random(n, m, seed)
		el := g.EdgeList()
		if el.NumEdges() == 0 {
			return true
		}
		ord := core.NewRandomOrder(el.NumEdges(), seed^0x5555)
		prefix := int(rawPrefix)%el.NumEdges() + 1
		got := PrefixSFRelaxed(el, ord, Options{PrefixSize: prefix, Grain: 4})
		return IsForest(el, got.InForest) && IsSpanning(el, got.InForest) &&
			got.Size() == SequentialSF(el, ord).Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExactVsRelaxedHubContention(t *testing.T) {
	// The finding that answers the paper's §7 conjecture for spanning
	// forests: on a star (one hub), the exact sequential-equivalent
	// protocol serializes — every attachment must win the hub's
	// reservation, so rounds ~ n — while the relaxed protocol finishes
	// in O(1) rounds because the hub's root is never contended (links
	// write the leaf-side roots... more precisely the larger root).
	n := 2000
	g := graph.Star(n)
	el := g.EdgeList()
	ord := core.NewRandomOrder(el.NumEdges(), 9)

	exact := PrefixSF(el, ord, Options{PrefixFrac: 1})
	relaxed := PrefixSFRelaxed(el, ord, Options{PrefixFrac: 1})
	if exact.Stats.Rounds < int64(n)/2 {
		t.Errorf("exact rounds = %d; expected near-linear serialization on the star", exact.Stats.Rounds)
	}
	if relaxed.Stats.Rounds > 10 {
		t.Errorf("relaxed rounds = %d; expected O(1) on the star", relaxed.Stats.Rounds)
	}
	// Both must still be valid spanning forests of the star (all edges).
	if exact.Size() != n-1 || relaxed.Size() != n-1 {
		t.Errorf("star forests sizes %d, %d; want %d", exact.Size(), relaxed.Size(), n-1)
	}
}

func BenchmarkPrefixSFRelaxed(b *testing.B) {
	el, ord := instance(100000, 500000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PrefixSFRelaxed(el, ord, Options{PrefixFrac: 0.01})
	}
}
