package spanning

import (
	"context"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// PrefixSFRelaxed computes a spanning forest with the PBBS-style
// one-root reservation: an edge reserves only the root it would link
// (the larger root id, hung under the smaller), so any number of edges
// can attach distinct subtrees to the same hub component in one round.
//
// The tradeoff against PrefixSF is precise and worth stating, because it
// is the honest answer to the paper's §7 conjecture for spanning
// forests:
//
//   - PrefixSF reserves BOTH roots, which forces the exact
//     lexicographically-first forest (sequential equivalence) but
//     serializes attachments to a hub component — one tree edge per
//     round can win the hub's reservation, so on graphs whose union
//     structure funnels through a giant component the round count
//     degenerates toward Theta(n) and the parallelism evaporates.
//   - PrefixSFRelaxed commits every edge that wins its single written
//     root. The result is still a valid spanning forest (same
//     components as the input, no cycles: links always hang the larger
//     root under the smaller, so parent ids strictly decrease), and it
//     is deterministic for a fixed order AND fixed prefix size — every
//     rerun and every thread count gives the same forest — but it is
//     not necessarily the forest the sequential loop picks, and
//     different prefix sizes may pick different (equally valid)
//     forests. This is exactly the semantics of the PBBS spanning
//     forest built on deterministic reservations.
func PrefixSFRelaxed(el graph.EdgeList, ord core.Order, opt Options) *Result {
	res, err := PrefixSFRelaxedCtx(context.Background(), el, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// PrefixSFRelaxedCtx is PrefixSFRelaxed with cooperative cancellation:
// ctx is checked once per round, so a cancelled context aborts within
// one round and returns ctx.Err(). Pooled buffers come from
// opt.Workspace when set.
func PrefixSFRelaxedCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("spanning: order size does not match edge list")
	}
	const maxRank = int32(1<<31 - 1)
	grain := opt.Grain
	if grain <= 0 {
		grain = parallel.DefaultGrain
	}
	prefix := opt.prefixFor(m)
	rank := ord.Rank

	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	dsu := ws.freshDSU(el.N)
	in := make([]bool, m)
	status := grow32(&ws.status, m) // 0 undecided, 1 in, 2 out
	fill32(status, 0)
	reserv := grow32(&ws.reserv, el.N)
	fill32(reserv, maxRank)
	// Root snapshots from the reserve phase: child is the root that
	// would be written (larger id), target the root it hangs under.
	child := grow32(&ws.rootA, m)
	target := grow32(&ws.rootB, m)
	fill32(child, 0)
	fill32(target, 0)

	// Per-round window cap: fixed, or driven by the adaptive
	// controller. The relaxed forest is deterministic per window
	// schedule (and the adaptive schedule is itself a deterministic
	// function of the run), but different schedules — like different
	// fixed prefixes — may select different, equally valid forests.
	window := prefix
	var ctrl *core.AdaptiveController
	if opt.Adaptive {
		ctrl = core.NewAdaptiveController(opt.adaptiveInitial(m), core.AdaptiveGrowCap(m), m)
		window = ctrl.Window()
	}
	maxWindow := window

	stats := Stats{}
	var inspections atomic.Int64
	var prevInspections int64
	active := growActive(&ws.active, window)
	defer func() { ws.active = active[:0] }()
	nextRank := 0
	resolved := 0

	for resolved < m {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for len(active) < window && nextRank < m {
			active = append(active, ord.Order[nextRank])
			nextRank++
		}
		act := active
		if len(act) > window {
			act = act[:window]
		}
		roundWindow := window
		if roundWindow > maxWindow {
			maxWindow = roundWindow
		}
		stats.Rounds++
		stats.Attempts += int64(len(act))

		// Reserve: find roots; drop cycle edges; bid on the root that
		// would be overwritten.
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				e := act[i]
				edge := el.Edges[e]
				ru := dsu.Find(edge.U)
				rv := dsu.Find(edge.V)
				local += 2
				if ru == rv {
					atomic.StoreInt32(&status[e], 2)
					continue
				}
				if ru < rv {
					ru, rv = rv, ru
				}
				child[e], target[e] = ru, rv
				parallel.WriteMin32(&reserv[ru], rank[e])
			}
			inspections.Add(local)
		})

		// Commit: the winner of each written root links it. Distinct
		// winners write distinct roots, so links never race; hanging
		// larger under smaller keeps the structure a forest.
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e := act[i]
				if atomic.LoadInt32(&status[e]) != 0 {
					continue
				}
				if atomic.LoadInt32(&reserv[child[e]]) == rank[e] {
					dsu.Link(child[e], target[e])
					in[e] = true
					atomic.StoreInt32(&status[e], 1)
				}
			}
		})

		// Reset this round's bids.
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e := act[i]
				if atomic.LoadInt32(&status[e]) != 2 {
					atomic.StoreInt32(&reserv[child[e]], maxRank)
				}
			}
		})

		before := len(act)
		kept := parallel.PackInPlace(act, grain, func(i int) bool {
			return status[act[i]] == 0
		})
		if len(act) < len(active) {
			// Slide the unattempted tail up against the kept retries;
			// rank order is preserved on both sides of the seam.
			moved := copy(active[len(kept):], active[len(act):])
			active = active[:len(kept)+moved]
		} else {
			active = kept
		}
		resolvedThis := before - len(kept)
		resolved += resolvedThis
		cur := inspections.Load()
		if ctrl != nil {
			ctrl.Observe(before, resolvedThis, cur-prevInspections)
			window = ctrl.Window()
		}
		if opt.OnRound != nil {
			opt.OnRound(core.RoundStat{
				Round:       stats.Rounds,
				Prefix:      roundWindow,
				Attempted:   before,
				Resolved:    resolvedThis,
				Inspections: cur - prevInspections,
			})
		}
		prevInspections = cur
	}
	stats.PrefixSize = maxWindow
	stats.EdgeInspections = inspections.Load()
	return newResult(el, in, stats), nil
}
