package spanning

import (
	"context"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
)

// PrefixSFRelaxed computes a spanning forest with the PBBS-style
// one-root reservation: an edge reserves only the root it would link
// (the larger root id, hung under the smaller), so any number of edges
// can attach distinct subtrees to the same hub component in one round.
//
// The tradeoff against PrefixSF is precise and worth stating, because it
// is the honest answer to the paper's §7 conjecture for spanning
// forests:
//
//   - PrefixSF reserves BOTH roots, which forces the exact
//     lexicographically-first forest (sequential equivalence) but
//     serializes attachments to a hub component — one tree edge per
//     round can win the hub's reservation, so on graphs whose union
//     structure funnels through a giant component the round count
//     degenerates toward Theta(n) and the parallelism evaporates.
//   - PrefixSFRelaxed commits every edge that wins its single written
//     root. The result is still a valid spanning forest (same
//     components as the input, no cycles: links always hang the larger
//     root under the smaller, so parent ids strictly decrease), and it
//     is deterministic for a fixed order AND fixed prefix size — every
//     rerun and every thread count gives the same forest — but it is
//     not necessarily the forest the sequential loop picks, and
//     different prefix sizes may pick different (equally valid)
//     forests. This is exactly the semantics of the PBBS spanning
//     forest built on deterministic reservations.
func PrefixSFRelaxed(el graph.EdgeList, ord core.Order, opt Options) *Result {
	res, err := PrefixSFRelaxedCtx(context.Background(), el, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// PrefixSFRelaxedCtx is PrefixSFRelaxed with cooperative cancellation:
// ctx is checked once per round, so a cancelled context aborts within
// one round and returns ctx.Err(). Pooled buffers come from
// opt.Workspace when set.
//
// The round loop is the shared speculative-prefix engine
// (internal/engine); this function contributes the relaxed spanning
// forest problem: bid only on the root that would be overwritten, link
// on winning that single reservation, clear the bids in the reset
// phase. The relaxed forest is deterministic per window schedule (and
// the adaptive schedule is itself a deterministic function of the run),
// but different schedules — like different fixed prefixes — may select
// different, equally valid forests.
func PrefixSFRelaxedCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("spanning: order size does not match edge list")
	}
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	dsu := ws.freshDSU(el.N)
	in := make([]bool, m)
	reserv := grow32(&ws.reserv, el.N)
	fill32(reserv, maxRank)
	// Root snapshots from the reserve phase: child is the root that
	// would be written (larger id), target the root it hangs under.
	child := grow32(&ws.rootA, m)
	target := grow32(&ws.rootB, m)
	fill32(child, 0)
	fill32(target, 0)

	prob := &sfRelaxedProblem{el: el, rank: ord.Rank, dsu: dsu, in: in, reserv: reserv, child: child, target: target}
	stats, err := engine.Run(ctx, ord.Order, prob, opt.engineOptions(&ws.eng))
	if err != nil {
		return nil, err
	}
	return newResult(el, in, stats), nil
}

// sfRelaxedProblem is the engine adapter for the PBBS-style one-root
// reservation forest; see sfProblem for the sharing discipline.
type sfRelaxedProblem struct {
	el     graph.EdgeList
	rank   []int32
	dsu    *unionfind.Concurrent
	in     []bool
	reserv []int32
	child  []int32
	target []int32
}

// Check is the reserve phase: find roots, drop cycle edges, bid on the
// root that would be overwritten (the larger id).
func (p *sfRelaxedProblem) Check(act, outcome []int32, lo, hi int) int64 {
	var local int64
	for i := lo; i < hi; i++ {
		e := act[i]
		edge := p.el.Edges[e]
		ru := p.dsu.Find(edge.U)
		rv := p.dsu.Find(edge.V)
		local += 2
		if ru == rv {
			outcome[i] = engine.Dropped
			continue
		}
		if ru < rv {
			ru, rv = rv, ru
		}
		p.child[e], p.target[e] = ru, rv
		parallel.WriteMin32(&p.reserv[ru], p.rank[e])
	}
	return local
}

// Commit links the winner of each written root. Distinct winners write
// distinct roots, so links never race; hanging larger under smaller
// keeps the structure a forest.
func (p *sfRelaxedProblem) Commit(act, outcome []int32, lo, hi int) int64 {
	for i := lo; i < hi; i++ {
		if outcome[i] != engine.Undecided {
			continue
		}
		e := act[i]
		if atomic.LoadInt32(&p.reserv[p.child[e]]) == p.rank[e] {
			p.dsu.Link(p.child[e], p.target[e])
			p.in[e] = true
			outcome[i] = engine.Committed
		}
	}
	return 0
}

// Reset clears this round's bids; edges dropped as cycles this round
// never bid, so their (possibly stale) child snapshot is skipped.
func (p *sfRelaxedProblem) Reset(act, outcome []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		if outcome[i] != engine.Dropped {
			atomic.StoreInt32(&p.reserv[p.child[act[i]]], maxRank)
		}
	}
}
