// Package spanning implements greedy spanning forest, the extension the
// paper's conclusion proposes ("we believe that our approach can be
// applied to sequential greedy algorithms for other problems (e.g.
// spanning forest)"). The sequential algorithm scans edges in a random
// priority order and keeps every edge that joins two different
// components; the parallel version runs the same loop speculatively on
// prefixes with deterministic reservations over component roots, and
// returns exactly the sequential forest for any prefix size and
// schedule.
package spanning

import (
	"context"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
)

// Stats reuses the core counters (Rounds, Attempts, EdgeInspections,
// PrefixSize) with the same conventions as MIS/MM.
type Stats = core.Stats

// Result is the outcome of a spanning forest computation.
type Result struct {
	// InForest[e] reports whether edge e is a forest (tree) edge.
	InForest []bool
	// Edges lists the forest edges in increasing edge-id order.
	Edges []graph.Edge
	// Stats are the run's cost counters.
	Stats Stats
}

// Size returns the number of forest edges.
func (r *Result) Size() int { return len(r.Edges) }

// Equal reports whether two results select the same edge set.
func (r *Result) Equal(other *Result) bool {
	if len(r.InForest) != len(other.InForest) {
		return false
	}
	for i := range r.InForest {
		if r.InForest[i] != other.InForest[i] {
			return false
		}
	}
	return true
}

func newResult(el graph.EdgeList, in []bool, stats Stats) *Result {
	ids := parallel.PackIndex(len(in), 4096, func(i int) bool { return in[i] })
	edges := make([]graph.Edge, len(ids))
	for i, id := range ids {
		edges[i] = el.Edges[id]
	}
	return &Result{InForest: in, Edges: edges, Stats: stats}
}

// SequentialSF computes the greedy spanning forest of el under ord with
// a union-find over the edges in priority order; the kept edges form
// the lexicographically-first spanning forest.
func SequentialSF(el graph.EdgeList, ord core.Order) *Result {
	res, err := SequentialSFCtx(context.Background(), el, ord, Options{})
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// seqCancelMask paces the sequential scan's cancellation checks, as in
// core.SequentialMISCtx.
const seqCancelMask = 1<<12 - 1

// SequentialSFCtx is SequentialSF with cooperative cancellation (ctx is
// checked every few thousand edges). The sequential union-find is not
// pooled: it is cheap relative to the scan and sharing it with the
// concurrent variant would complicate the workspace for no measurable
// win.
func SequentialSFCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("spanning: order size does not match edge list")
	}
	dsu := unionfind.NewDSU(el.N)
	in := make([]bool, m)
	for r := 0; r < m; r++ {
		if r&seqCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := ord.Order[r]
		edge := el.Edges[e]
		if dsu.Union(edge.U, edge.V) {
			in[e] = true
		}
	}
	return newResult(el, in, Stats{
		Rounds:          int64(m),
		Attempts:        int64(m),
		EdgeInspections: 2 * int64(m),
	}), nil
}

// Options configures PrefixSF; the fields mirror matching.Options.
type Options struct {
	PrefixSize int
	PrefixFrac float64
	Grain      int
	// Adaptive replaces the fixed window with a measured schedule (see
	// core.Options.Adaptive). The schedule is a deterministic function
	// of the run's per-round counters, so adaptive runs stay
	// reproducible; PrefixSF still returns exactly the sequential
	// forest for every schedule, while PrefixSFRelaxed — deterministic
	// per window schedule, like per fixed prefix — may select a
	// different (equally valid) forest than a fixed-window run.
	Adaptive bool
	// OnRound, if non-nil, is called after every round of the
	// prefix-based algorithms with that round's statistics (see
	// core.RoundStat). It runs on the round loop's goroutine.
	OnRound func(core.RoundStat)
	// Workspace, if non-nil, supplies pooled per-run buffers reused
	// across runs. nil means allocate fresh buffers.
	Workspace *Workspace
}

func (o Options) prefixFor(m int) int {
	p := o.PrefixSize
	if p <= 0 {
		frac := o.PrefixFrac
		if frac <= 0 {
			frac = core.DefaultPrefixFrac
		}
		// Integer ceiling (⌈frac·m⌉): float truncation used to land one
		// below the documented prefix for fractions like 0.005.
		p = core.CeilFrac(frac, m)
	}
	if p < 1 {
		p = 1
	}
	if p > m {
		p = m
	}
	return p
}

// adaptiveInitial mirrors core.Options.adaptiveInitial for edge inputs.
func (o Options) adaptiveInitial(m int) int {
	if o.PrefixSize > 0 || o.PrefixFrac > 0 {
		return o.prefixFor(m)
	}
	w := core.AdaptiveStartWindow
	if w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PrefixSF computes the lexicographically-first spanning forest with
// prefix-based deterministic reservations. Each round, every active
// edge finds the current roots of its endpoints; an edge whose roots
// coincide is a cycle edge and resolves to out. Otherwise it bids for
// BOTH roots with a priority write-min and commits — linking the
// larger root under the smaller, which keeps the union forest acyclic —
// only if it holds both. Reserving both roots is what makes the result
// equal to the sequential forest: an earlier unresolved edge incident
// to either component always outbids a later one, so a later edge can
// never steal a union that would change an earlier edge's fate.
func PrefixSF(el graph.EdgeList, ord core.Order, opt Options) *Result {
	res, err := PrefixSFCtx(context.Background(), el, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// PrefixSFCtx is PrefixSF with cooperative cancellation: ctx is checked
// once per round, so a cancelled context aborts within one round and
// returns ctx.Err(). Pooled buffers come from opt.Workspace when set.
func PrefixSFCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("spanning: order size does not match edge list")
	}
	const maxRank = int32(1<<31 - 1)
	grain := opt.Grain
	if grain <= 0 {
		grain = parallel.DefaultGrain
	}
	prefix := opt.prefixFor(m)
	rank := ord.Rank

	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	dsu := ws.freshDSU(el.N)
	in := make([]bool, m)
	status := grow32(&ws.status, m) // 0 undecided, 1 in, 2 out
	fill32(status, 0)
	reserv := grow32(&ws.reserv, el.N)
	fill32(reserv, maxRank)
	// Per-edge root snapshot from the reserve phase, reused by commit.
	rootU := grow32(&ws.rootA, m)
	rootV := grow32(&ws.rootB, m)
	fill32(rootU, 0)
	fill32(rootV, 0)

	// Per-round window cap: fixed, or driven by the adaptive
	// controller. Every schedule returns exactly the sequential forest
	// — the active set always holds the earliest unresolved edges.
	window := prefix
	var ctrl *core.AdaptiveController
	if opt.Adaptive {
		ctrl = core.NewAdaptiveController(opt.adaptiveInitial(m), core.AdaptiveGrowCap(m), m)
		window = ctrl.Window()
	}
	maxWindow := window

	stats := Stats{}
	var inspections atomic.Int64
	var prevInspections int64
	active := growActive(&ws.active, window)
	defer func() { ws.active = active[:0] }()
	nextRank := 0
	resolved := 0

	for resolved < m {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for len(active) < window && nextRank < m {
			active = append(active, ord.Order[nextRank])
			nextRank++
		}
		act := active
		if len(act) > window {
			act = act[:window]
		}
		roundWindow := window
		if roundWindow > maxWindow {
			maxWindow = roundWindow
		}
		stats.Rounds++
		stats.Attempts += int64(len(act))

		// Reserve: find roots; drop cycle edges; bid on both roots.
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				e := act[i]
				edge := el.Edges[e]
				ru := dsu.Find(edge.U)
				rv := dsu.Find(edge.V)
				local += 2
				if ru == rv {
					atomic.StoreInt32(&status[e], 2)
					continue
				}
				rootU[e], rootV[e] = ru, rv
				parallel.WriteMin32(&reserv[ru], rank[e])
				parallel.WriteMin32(&reserv[rv], rank[e])
			}
			inspections.Add(local)
		})

		// Commit: an edge holding both roots links them (larger root id
		// under smaller, so parent ids strictly decrease along links and
		// the structure stays a forest even across concurrent commits,
		// which necessarily touch disjoint root pairs).
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e := act[i]
				if atomic.LoadInt32(&status[e]) != 0 {
					continue
				}
				re := rank[e]
				ru, rv := rootU[e], rootV[e]
				if atomic.LoadInt32(&reserv[ru]) == re && atomic.LoadInt32(&reserv[rv]) == re {
					if ru < rv {
						dsu.Link(rv, ru)
					} else {
						dsu.Link(ru, rv)
					}
					in[e] = true
					atomic.StoreInt32(&status[e], 1)
				}
			}
		})

		// Reset this round's bids.
		parallel.ForRange(len(act), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e := act[i]
				if rootU[e] != rootV[e] {
					atomic.StoreInt32(&reserv[rootU[e]], maxRank)
					atomic.StoreInt32(&reserv[rootV[e]], maxRank)
				}
			}
		})

		before := len(act)
		kept := parallel.PackInPlace(act, grain, func(i int) bool {
			return status[act[i]] == 0
		})
		if len(act) < len(active) {
			// Slide the unattempted tail up against the kept retries;
			// rank order is preserved on both sides of the seam.
			moved := copy(active[len(kept):], active[len(act):])
			active = active[:len(kept)+moved]
		} else {
			active = kept
		}
		resolvedThis := before - len(kept)
		resolved += resolvedThis
		cur := inspections.Load()
		if ctrl != nil {
			ctrl.Observe(before, resolvedThis, cur-prevInspections)
			window = ctrl.Window()
		}
		if opt.OnRound != nil {
			opt.OnRound(core.RoundStat{
				Round:       stats.Rounds,
				Prefix:      roundWindow,
				Attempted:   before,
				Resolved:    resolvedThis,
				Inspections: cur - prevInspections,
			})
		}
		prevInspections = cur
	}
	stats.PrefixSize = maxWindow
	stats.EdgeInspections = inspections.Load()
	return newResult(el, in, stats), nil
}

// IsForest reports whether the selected edges contain no cycle.
func IsForest(el graph.EdgeList, inForest []bool) bool {
	dsu := unionfind.NewDSU(el.N)
	for e, in := range inForest {
		if in && !dsu.Union(el.Edges[e].U, el.Edges[e].V) {
			return false
		}
	}
	return true
}

// IsSpanning reports whether the selected edges connect everything the
// full edge set connects (same components).
func IsSpanning(el graph.EdgeList, inForest []bool) bool {
	full := unionfind.NewDSU(el.N)
	sel := unionfind.NewDSU(el.N)
	for e, edge := range el.Edges {
		full.Union(edge.U, edge.V)
		if inForest[e] {
			sel.Union(edge.U, edge.V)
		}
	}
	return full.Components() == sel.Components()
}
