// Package spanning implements greedy spanning forest, the extension the
// paper's conclusion proposes ("we believe that our approach can be
// applied to sequential greedy algorithms for other problems (e.g.
// spanning forest)"). The sequential algorithm scans edges in a random
// priority order and keeps every edge that joins two different
// components; the parallel version runs the same loop speculatively on
// prefixes with deterministic reservations over component roots, and
// returns exactly the sequential forest for any prefix size and
// schedule.
package spanning

import (
	"context"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
)

// Stats reuses the core counters (Rounds, Attempts, EdgeInspections,
// PrefixSize) with the same conventions as MIS/MM.
type Stats = core.Stats

// Result is the outcome of a spanning forest computation.
type Result struct {
	// InForest[e] reports whether edge e is a forest (tree) edge.
	InForest []bool
	// Edges lists the forest edges in increasing edge-id order.
	Edges []graph.Edge
	// Stats are the run's cost counters.
	Stats Stats
}

// Size returns the number of forest edges.
func (r *Result) Size() int { return len(r.Edges) }

// Equal reports whether two results select the same edge set.
func (r *Result) Equal(other *Result) bool {
	if len(r.InForest) != len(other.InForest) {
		return false
	}
	for i := range r.InForest {
		if r.InForest[i] != other.InForest[i] {
			return false
		}
	}
	return true
}

func newResult(el graph.EdgeList, in []bool, stats Stats) *Result {
	ids := parallel.PackIndex(len(in), 4096, func(i int) bool { return in[i] })
	edges := make([]graph.Edge, len(ids))
	for i, id := range ids {
		edges[i] = el.Edges[id]
	}
	return &Result{InForest: in, Edges: edges, Stats: stats}
}

// SequentialSF computes the greedy spanning forest of el under ord with
// a union-find over the edges in priority order; the kept edges form
// the lexicographically-first spanning forest.
func SequentialSF(el graph.EdgeList, ord core.Order) *Result {
	res, err := SequentialSFCtx(context.Background(), el, ord, Options{})
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// seqCancelMask paces the sequential scan's cancellation checks, as in
// core.SequentialMISCtx.
const seqCancelMask = 1<<12 - 1

// SequentialSFCtx is SequentialSF with cooperative cancellation (ctx is
// checked every few thousand edges). The sequential union-find is not
// pooled: it is cheap relative to the scan and sharing it with the
// concurrent variant would complicate the workspace for no measurable
// win.
func SequentialSFCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("spanning: order size does not match edge list")
	}
	dsu := unionfind.NewDSU(el.N)
	in := make([]bool, m)
	for r := 0; r < m; r++ {
		if r&seqCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := ord.Order[r]
		edge := el.Edges[e]
		if dsu.Union(edge.U, edge.V) {
			in[e] = true
		}
	}
	return newResult(el, in, Stats{
		Rounds:          int64(m),
		Attempts:        int64(m),
		EdgeInspections: 2 * int64(m),
	}), nil
}

// Options configures PrefixSF; the fields mirror matching.Options.
type Options struct {
	PrefixSize int
	PrefixFrac float64
	Grain      int
	// Adaptive replaces the fixed window with a measured schedule (see
	// core.Options.Adaptive). The schedule is a deterministic function
	// of the run's per-round counters, so adaptive runs stay
	// reproducible; PrefixSF still returns exactly the sequential
	// forest for every schedule, while PrefixSFRelaxed — deterministic
	// per window schedule, like per fixed prefix — may select a
	// different (equally valid) forest than a fixed-window run.
	Adaptive bool
	// OnRound, if non-nil, is called after every round of the
	// prefix-based algorithms with that round's statistics (see
	// core.RoundStat). It runs on the round loop's goroutine.
	OnRound func(core.RoundStat)
	// Clock, if non-nil, enables the engine's per-phase wall-time
	// attribution (see engine.Options.Clock); telemetry-only, injected
	// by the caller.
	Clock func() int64
	// Workspace, if non-nil, supplies pooled per-run buffers reused
	// across runs. nil means allocate fresh buffers.
	Workspace *Workspace
}

// engineOptions translates the spanning options into the engine's form,
// wiring the pooled window buffers when ws is non-nil. Prefix
// resolution (size/frac/default, adaptive seeding) lives in the engine,
// the single source of truth shared with the other problem packages.
func (o Options) engineOptions(ws *engine.Workspace) engine.Options {
	return engine.Options{
		PrefixSize: o.PrefixSize,
		PrefixFrac: o.PrefixFrac,
		Adaptive:   o.Adaptive,
		Grain:      o.Grain,
		OnRound:    o.OnRound,
		Clock:      o.Clock,
		Workspace:  ws,
	}
}

// PrefixSF computes the lexicographically-first spanning forest with
// prefix-based deterministic reservations. Each round, every active
// edge finds the current roots of its endpoints; an edge whose roots
// coincide is a cycle edge and resolves to out. Otherwise it bids for
// BOTH roots with a priority write-min and commits — linking the
// larger root under the smaller, which keeps the union forest acyclic —
// only if it holds both. Reserving both roots is what makes the result
// equal to the sequential forest: an earlier unresolved edge incident
// to either component always outbids a later one, so a later edge can
// never steal a union that would change an earlier edge's fate.
func PrefixSF(el graph.EdgeList, ord core.Order, opt Options) *Result {
	res, err := PrefixSFCtx(context.Background(), el, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// PrefixSFCtx is PrefixSF with cooperative cancellation: ctx is checked
// once per round, so a cancelled context aborts within one round and
// returns ctx.Err(). Pooled buffers come from opt.Workspace when set.
//
// The round loop is the shared speculative-prefix engine
// (internal/engine); this function contributes the strict spanning
// forest problem: find roots and bid on both in the check phase, link
// when holding both reservations, clear the bids in the reset phase.
func PrefixSFCtx(ctx context.Context, el graph.EdgeList, ord core.Order, opt Options) (*Result, error) {
	m := el.NumEdges()
	if ord.Len() != m {
		panic("spanning: order size does not match edge list")
	}
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	dsu := ws.freshDSU(el.N)
	in := make([]bool, m)
	reserv := grow32(&ws.reserv, el.N)
	fill32(reserv, maxRank)
	// Per-edge root snapshot from the reserve phase, reused by commit.
	rootU := grow32(&ws.rootA, m)
	rootV := grow32(&ws.rootB, m)
	fill32(rootU, 0)
	fill32(rootV, 0)

	prob := &sfProblem{el: el, rank: ord.Rank, dsu: dsu, in: in, reserv: reserv, rootU: rootU, rootV: rootV}
	stats, err := engine.Run(ctx, ord.Order, prob, opt.engineOptions(&ws.eng))
	if err != nil {
		return nil, err
	}
	return newResult(el, in, stats), nil
}

// maxRank is the neutral reservation value: larger than any edge rank.
const maxRank = int32(1<<31 - 1)

// sfProblem is the engine adapter for the strict (sequential-
// equivalent) spanning forest. The reservation array is shared between
// concurrently checked edges, so bids go through the priority write-min
// and the commit-phase reads and reset-phase clears pair with them
// atomically; the root snapshots and forest bits are written only by
// their own edge's phases, on opposite sides of the engine's fork-join
// barriers.
type sfProblem struct {
	el     graph.EdgeList
	rank   []int32
	dsu    *unionfind.Concurrent
	in     []bool
	reserv []int32
	rootU  []int32
	rootV  []int32
}

// Check is the reserve phase: find roots, drop cycle edges, bid on both
// roots.
func (p *sfProblem) Check(act, outcome []int32, lo, hi int) int64 {
	var local int64
	for i := lo; i < hi; i++ {
		e := act[i]
		edge := p.el.Edges[e]
		ru := p.dsu.Find(edge.U)
		rv := p.dsu.Find(edge.V)
		local += 2
		if ru == rv {
			outcome[i] = engine.Dropped
			continue
		}
		p.rootU[e], p.rootV[e] = ru, rv
		parallel.WriteMin32(&p.reserv[ru], p.rank[e])
		parallel.WriteMin32(&p.reserv[rv], p.rank[e])
	}
	return local
}

// Commit links every edge holding both of its roots' reservations
// (larger root id under smaller, so parent ids strictly decrease along
// links and the structure stays a forest even across concurrent
// commits, which necessarily touch disjoint root pairs).
func (p *sfProblem) Commit(act, outcome []int32, lo, hi int) int64 {
	for i := lo; i < hi; i++ {
		if outcome[i] != engine.Undecided {
			continue
		}
		e := act[i]
		re := p.rank[e]
		ru, rv := p.rootU[e], p.rootV[e]
		if atomic.LoadInt32(&p.reserv[ru]) == re && atomic.LoadInt32(&p.reserv[rv]) == re {
			if ru < rv {
				p.dsu.Link(rv, ru)
			} else {
				p.dsu.Link(ru, rv)
			}
			p.in[e] = true
			outcome[i] = engine.Committed
		}
	}
	return 0
}

// Reset clears this round's bids. The root-snapshot guard skips edges
// that never bid (a fresh cycle edge still has its zeroed — equal —
// snapshot); a retried edge's stale snapshot only re-clears roots that
// are already neutral.
func (p *sfProblem) Reset(act, outcome []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		e := act[i]
		if p.rootU[e] != p.rootV[e] {
			atomic.StoreInt32(&p.reserv[p.rootU[e]], maxRank)
			atomic.StoreInt32(&p.reserv[p.rootV[e]], maxRank)
		}
	}
}

// IsForest reports whether the selected edges contain no cycle.
func IsForest(el graph.EdgeList, inForest []bool) bool {
	dsu := unionfind.NewDSU(el.N)
	for e, in := range inForest {
		if in && !dsu.Union(el.Edges[e].U, el.Edges[e].V) {
			return false
		}
	}
	return true
}

// IsSpanning reports whether the selected edges connect everything the
// full edge set connects (same components).
func IsSpanning(el graph.EdgeList, inForest []bool) bool {
	full := unionfind.NewDSU(el.N)
	sel := unionfind.NewDSU(el.N)
	for e, edge := range el.Edges {
		full.Union(edge.U, edge.V)
		if inForest[e] {
			sel.Union(edge.U, edge.V)
		}
	}
	return full.Components() == sel.Components()
}
