package spanning

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
)

func instance(n, m int, seed uint64) (graph.EdgeList, core.Order) {
	g := graph.Random(n, m, seed)
	el := g.EdgeList()
	return el, core.NewRandomOrder(el.NumEdges(), seed+1)
}

func TestSequentialSFTree(t *testing.T) {
	// A tree: every edge is a forest edge regardless of order.
	g := graph.RandomTree(100, 3)
	el := g.EdgeList()
	r := SequentialSF(el, core.NewRandomOrder(el.NumEdges(), 4))
	if r.Size() != 99 {
		t.Errorf("tree forest size = %d, want 99", r.Size())
	}
}

func TestSequentialSFCycleDropsOneEdge(t *testing.T) {
	g := graph.Cycle(10)
	el := g.EdgeList()
	ord := core.NewRandomOrder(el.NumEdges(), 5)
	r := SequentialSF(el, ord)
	if r.Size() != 9 {
		t.Errorf("cycle forest size = %d, want 9", r.Size())
	}
	// The dropped edge must be the last one in priority order.
	last := ord.Order[el.NumEdges()-1]
	if r.InForest[last] {
		t.Error("the lowest-priority cycle edge should be the one dropped")
	}
}

func TestSequentialSFConnectedGraphSize(t *testing.T) {
	el, ord := instance(500, 3000, 7) // dense enough to be connected whp
	r := SequentialSF(el, ord)
	if !IsForest(el, r.InForest) {
		t.Error("result has a cycle")
	}
	if !IsSpanning(el, r.InForest) {
		t.Error("result does not span")
	}
	st := graph.Stats(graph.MustFromEdges(el.N, el.Edges))
	wantEdges := el.N - st.ConnectedComps
	if r.Size() != wantEdges {
		t.Errorf("forest size = %d, want n - components = %d", r.Size(), wantEdges)
	}
}

func TestPrefixSFMatchesSequential(t *testing.T) {
	cases := []*graph.Graph{
		graph.Random(300, 1000, 1),
		graph.RMat(8, 800, 2, graph.DefaultRMatOptions()),
		graph.Complete(40),
		graph.Grid2D(12, 13),
		graph.Cycle(50),
		graph.Star(60),
	}
	for ci, g := range cases {
		el := g.EdgeList()
		ord := core.NewRandomOrder(el.NumEdges(), uint64(ci)+11)
		want := SequentialSF(el, ord)
		for _, frac := range []float64{0.001, 0.01, 0.2, 1.0} {
			got := PrefixSF(el, ord, Options{PrefixFrac: frac})
			if !got.Equal(want) {
				t.Errorf("case %d frac %v: prefix spanning forest differs from sequential (%d vs %d edges)",
					ci, frac, got.Size(), want.Size())
			}
		}
		one := PrefixSF(el, ord, Options{PrefixSize: 1})
		if !one.Equal(want) {
			t.Errorf("case %d: prefix-1 differs from sequential", ci)
		}
	}
}

func TestPrefixSFQuick(t *testing.T) {
	f := func(rawN uint8, rawM uint16, seed uint64, rawPrefix uint8) bool {
		n := int(rawN%60) + 2
		maxM := n * (n - 1) / 2
		m := int(rawM) % (maxM + 1)
		g := graph.Random(n, m, seed)
		el := g.EdgeList()
		if el.NumEdges() == 0 {
			return true
		}
		ord := core.NewRandomOrder(el.NumEdges(), seed^0xabcd)
		want := SequentialSF(el, ord)
		prefix := int(rawPrefix)%el.NumEdges() + 1
		got := PrefixSF(el, ord, Options{PrefixSize: prefix, Grain: 4})
		return got.Equal(want) && IsForest(el, got.InForest) && IsSpanning(el, got.InForest)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPrefixSFStats(t *testing.T) {
	el, ord := instance(400, 2000, 9)
	seq := PrefixSF(el, ord, Options{PrefixSize: 1})
	if seq.Stats.Rounds != int64(el.NumEdges()) {
		t.Errorf("prefix-1 rounds = %d, want m", seq.Stats.Rounds)
	}
	full := PrefixSF(el, ord, Options{PrefixFrac: 1})
	if full.Stats.Rounds >= seq.Stats.Rounds {
		t.Errorf("full prefix rounds = %d not smaller than sequential %d",
			full.Stats.Rounds, seq.Stats.Rounds)
	}
	if full.Stats.Attempts < int64(el.NumEdges()) {
		t.Errorf("attempts %d below m", full.Stats.Attempts)
	}
}

func TestIsForestAndIsSpanning(t *testing.T) {
	g := graph.Cycle(4)
	el := g.EdgeList()
	all := []bool{true, true, true, true}
	if IsForest(el, all) {
		t.Error("full cycle accepted as forest")
	}
	three := []bool{true, true, true, false}
	if !IsForest(el, three) || !IsSpanning(el, three) {
		t.Error("spanning path of cycle rejected")
	}
	two := []bool{true, true, false, false}
	if IsSpanning(el, two) {
		t.Error("disconnected subset accepted as spanning")
	}
}

func BenchmarkPrefixSF(b *testing.B) {
	// The exact protocol serializes on the giant component (see
	// relaxed.go), so it is benchmarked at a reduced size with a small
	// prefix; PrefixSFRelaxed covers the full-scale case.
	el, ord := instance(10000, 50000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PrefixSF(el, ord, Options{PrefixFrac: 0.001})
	}
}

func BenchmarkSequentialSF(b *testing.B) {
	el, ord := instance(100000, 500000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SequentialSF(el, ord)
	}
}
