package spanning

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestAdaptiveStrictSFMatchesSequential: the strict (both-roots)
// prefix algorithm returns exactly the sequential forest under any
// window schedule, including an adaptive one.
func TestAdaptiveStrictSFMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random": graph.Random(1200, 6000, 7),
		"grid":   graph.Grid2D(40, 40),
		"tree":   graph.RandomTree(800, 9),
		"cycle":  graph.Cycle(1000),
	}
	for name, g := range graphs {
		el := g.EdgeList()
		ord := core.NewRandomOrder(el.NumEdges(), 3)
		want := SequentialSF(el, ord)
		got := PrefixSF(el, ord, Options{Adaptive: true})
		if !got.Equal(want) {
			t.Errorf("%s: adaptive strict SF differs from sequential", name)
		}
	}
}

// TestAdaptiveRelaxedSFValidAndDeterministic: the relaxed (one-root)
// algorithm under an adaptive schedule still yields a valid spanning
// forest of the same cardinality as the sequential one (every spanning
// forest of an input has the same size), and the schedule — a pure
// function of machine-independent counters — makes reruns and grain
// changes bit-identical.
func TestAdaptiveRelaxedSFValidAndDeterministic(t *testing.T) {
	g := graph.Random(2000, 10000, 5)
	el := g.EdgeList()
	ord := core.NewRandomOrder(el.NumEdges(), 6)
	seq := SequentialSF(el, ord)

	base := PrefixSFRelaxed(el, ord, Options{Adaptive: true})
	if !IsForest(el, base.InForest) {
		t.Fatal("adaptive relaxed SF is not a forest")
	}
	if !IsSpanning(el, base.InForest) {
		t.Fatal("adaptive relaxed SF does not span the input's components")
	}
	if base.Size() != seq.Size() {
		t.Fatalf("adaptive relaxed SF size %d, sequential %d (both must equal n - #components)", base.Size(), seq.Size())
	}
	for _, grain := range []int{3, 128, 1024} {
		r := PrefixSFRelaxed(el, ord, Options{Adaptive: true, Grain: grain})
		if !r.Equal(base) {
			t.Fatalf("grain %d changed the adaptive relaxed forest", grain)
		}
		if r.Stats != base.Stats {
			t.Fatalf("grain %d changed adaptive relaxed stats: %+v vs %+v", grain, r.Stats, base.Stats)
		}
	}
}
