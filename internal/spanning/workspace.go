package spanning

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/unionfind"
)

// Workspace holds the pooled per-run buffers of the spanning-forest
// algorithms (reservations, root snapshots, and the concurrent
// union-find), reused across runs on same-or-smaller inputs. Buffers
// are reinitialized at the start of every run, so results are
// bit-identical to runs on fresh memory; Result arrays (InForest,
// Edges) are never pooled. Not safe for concurrent use; the zero value
// is ready.
type Workspace struct {
	reserv []int32
	rootA  []int32 // child/rootU snapshot
	rootB  []int32 // target/rootV snapshot
	dsu    *unionfind.Concurrent
	eng    engine.Workspace
}

// freshDSU returns the pooled union-find reset over n elements.
func (w *Workspace) freshDSU(n int) *unionfind.Concurrent {
	if w.dsu == nil {
		w.dsu = unionfind.NewConcurrent(n)
	} else {
		w.dsu.Reset(n)
	}
	return w.dsu
}

// Pooled-buffer helpers shared with the other algorithm packages.
var (
	grow32 = core.Grow32
	fill32 = core.Fill32
)
