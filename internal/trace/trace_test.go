package trace

import (
	"sync"
	"testing"
	"time"
)

// TestRingOrderAndWrap: the ring keeps exactly the newest `capacity`
// events, Recent returns them oldest-first with strictly increasing
// sequence numbers, and Total counts overwritten events too.
func TestRingOrderAndWrap(t *testing.T) {
	r := NewRecorder(4, 0)
	for i := 0; i < 10; i++ {
		r.Append(Event{Kind: KindRound, Round: int64(i)})
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	evs := r.Recent(0)
	if len(evs) != 4 {
		t.Fatalf("Recent(0) returned %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantRound := int64(6 + i)
		wantSeq := uint64(7 + i)
		if ev.Round != wantRound || ev.Seq != wantSeq {
			t.Errorf("event %d: round=%d seq=%d, want round=%d seq=%d", i, ev.Round, ev.Seq, wantRound, wantSeq)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %d: zero timestamp not stamped", i)
		}
	}
	// A limit below the retained count returns the newest events only.
	last2 := r.Recent(2)
	if len(last2) != 2 || last2[0].Seq != 9 || last2[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v, want seqs 9,10", last2)
	}
	// A limit above the retained count clamps.
	if got := len(r.Recent(100)); got != 4 {
		t.Fatalf("Recent(100) returned %d events, want 4", got)
	}
}

// TestRingUnwrappedOrder: before the ring wraps, Recent still answers
// oldest-first.
func TestRingUnwrappedOrder(t *testing.T) {
	r := NewRecorder(8, 0)
	for i := 0; i < 3; i++ {
		r.Append(Event{Round: int64(i)})
	}
	evs := r.Recent(0)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Round != int64(i) || ev.Seq != uint64(i+1) {
			t.Errorf("event %d out of order: %+v", i, ev)
		}
	}
}

// TestJobFilter: Job returns only the named job's retained events, in
// order, and overwritten events are honestly gone.
func TestJobFilter(t *testing.T) {
	r := NewRecorder(6, 0)
	r.Append(Event{Kind: KindSubmit, Job: "j1"})
	r.Append(Event{Kind: KindSubmit, Job: "j2"})
	r.Append(Event{Kind: KindRun, Job: "j1", DurMS: 1})
	r.Append(Event{Kind: KindDone, Job: "j1", Name: "done"})
	evs := r.Job("j1")
	if len(evs) != 3 {
		t.Fatalf("Job(j1) returned %d events, want 3", len(evs))
	}
	if evs[0].Kind != KindSubmit || evs[1].Kind != KindRun || evs[2].Kind != KindDone {
		t.Fatalf("Job(j1) out of order: %+v", evs)
	}
	if got := r.Job("j3"); got != nil {
		t.Fatalf("Job(j3) = %+v, want nil", got)
	}
	// Push j1's events out of the ring.
	for i := 0; i < 6; i++ {
		r.Append(Event{Kind: KindHTTP, Name: "GET /healthz"})
	}
	if got := r.Job("j1"); len(got) != 0 {
		t.Fatalf("Job(j1) after overwrite = %+v, want empty", got)
	}
}

// TestNilRecorder: a nil recorder is the valid disabled state — every
// method is a no-op and nothing panics.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Append(Event{Kind: KindSubmit, Job: "j1"})
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if r.Total() != 0 || r.Capacity() != 0 || r.RoundSampleEvery() != 0 {
		t.Error("nil recorder reports nonzero state")
	}
	if r.Recent(10) != nil || r.Job("j1") != nil {
		t.Error("nil recorder returned events")
	}
	if r.ShouldSampleRound(64) {
		t.Error("nil recorder wants round samples")
	}
	if NewRecorder(0, 1) != nil || NewRecorder(-5, 1) != nil {
		t.Error("non-positive capacity must return the nil (disabled) recorder")
	}
}

// TestRoundSampling: ShouldSampleRound fires on exact multiples of the
// interval and never when sampling is off.
func TestRoundSampling(t *testing.T) {
	r := NewRecorder(4, 64)
	if r.RoundSampleEvery() != 64 {
		t.Fatalf("RoundSampleEvery = %d, want 64", r.RoundSampleEvery())
	}
	for _, tc := range []struct {
		round int64
		want  bool
	}{{1, false}, {63, false}, {64, true}, {65, false}, {128, true}, {6400, true}} {
		if got := r.ShouldSampleRound(tc.round); got != tc.want {
			t.Errorf("ShouldSampleRound(%d) = %v, want %v", tc.round, got, tc.want)
		}
	}
	off := NewRecorder(4, 0)
	for round := int64(1); round <= 256; round++ {
		if off.ShouldSampleRound(round) {
			t.Fatalf("sampling-off recorder wants round %d", round)
		}
	}
}

// TestConcurrentAppend: concurrent appenders and readers race-cleanly
// (run with -race) and every sequence number is assigned exactly once.
func TestConcurrentAppend(t *testing.T) {
	r := NewRecorder(128, 0)
	const (
		writers = 8
		each    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Append(Event{Kind: KindRound, Name: "w", Round: int64(w*each + i)})
				if i%32 == 0 {
					r.Recent(16)
					r.Job("none")
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Total(); got != writers*each {
		t.Fatalf("Total = %d, want %d", got, writers*each)
	}
	evs := r.Recent(0)
	if len(evs) != 128 {
		t.Fatalf("retained %d events, want 128", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap between %d and %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestAppendAllocFree: steady-state Append performs zero allocations —
// the ring is the only storage and events are value copies. This is
// the tentpole's hot-path contract: recording must never put pressure
// on the GC that the algorithms' own allocation benchmarks would see.
func TestAppendAllocFree(t *testing.T) {
	r := NewRecorder(64, 4)
	// Fill past capacity so append takes the overwrite path.
	for i := 0; i < 128; i++ {
		r.Append(Event{Kind: KindRound, Round: int64(i)})
	}
	now := time.Now()
	ev := Event{Kind: KindRound, Job: "j1", Round: 7, Time: now}
	if allocs := testing.AllocsPerRun(100, func() { r.Append(ev) }); allocs != 0 {
		t.Errorf("Append allocates %.1f objects/op, want 0", allocs)
	}
	var nilR *Recorder
	if allocs := testing.AllocsPerRun(100, func() { nilR.Append(ev) }); allocs != 0 {
		t.Errorf("nil Append allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { r.ShouldSampleRound(12345) }); allocs != 0 {
		t.Errorf("ShouldSampleRound allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkAppend quantifies the per-event recording cost (the number
// EXPERIMENTS.md publishes next to the sampling-off zero).
func BenchmarkAppend(b *testing.B) {
	r := NewRecorder(1<<14, 1)
	ev := Event{Kind: KindRound, Job: "j1", Round: 1, Time: time.Now()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Round = int64(i)
		r.Append(ev)
	}
}

// BenchmarkDisabled quantifies the disabled (nil-recorder) path: the
// cost tracing adds to a service built without it.
func BenchmarkDisabled(b *testing.B) {
	var r *Recorder
	ev := Event{Kind: KindRound, Round: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.ShouldSampleRound(int64(i)) {
			r.Append(ev)
		}
	}
}
