package trace

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBroadcastFanoutAndFilter: each subscriber receives exactly the
// events its filter admits, in publish order, and the aggregate
// counters account for every publish.
func TestBroadcastFanoutAndFilter(t *testing.T) {
	b := NewBroadcaster(4, 16, 0)
	all, err := b.Subscribe(Filter{})
	if err != nil {
		t.Fatalf("Subscribe(all): %v", err)
	}
	defer all.Close()
	phases, err := b.Subscribe(Filter{Job: "J1", Kinds: map[Kind]bool{KindPhase: true}})
	if err != nil {
		t.Fatalf("Subscribe(phases): %v", err)
	}
	defer phases.Close()

	b.Publish(Event{Seq: 1, Kind: KindSubmit, Job: "J1"})
	b.Publish(Event{Seq: 2, Kind: KindPhase, Job: "J1", Round: 8})
	b.Publish(Event{Seq: 3, Kind: KindPhase, Job: "J2", Round: 4})
	b.Publish(Event{Seq: 4, Kind: KindDone, Job: "J1"})

	got, dropped, evicted := all.Drain(nil)
	if len(got) != 4 || dropped != 0 || evicted {
		t.Fatalf("all: got %d events dropped=%d evicted=%v, want 4/0/false", len(got), dropped, evicted)
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Errorf("all event %d: seq %d, want %d (publish order)", i, ev.Seq, i+1)
		}
	}
	got, _, _ = phases.Drain(nil)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("filtered subscriber got %+v, want only seq 2 (phase of J1)", got)
	}
	st := b.Stats()
	if st.Published != 4 || st.Subscribers != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want published=4 subscribers=2 dropped=0", st)
	}
}

// TestSlowConsumerEviction: a subscriber that never drains accumulates
// drops once its queue fills and is evicted after a full eviction
// budget, its doorbell rings so a blocked consumer observes it, and
// later publishes skip it entirely.
func TestSlowConsumerEviction(t *testing.T) {
	const queue = 4
	b := NewBroadcaster(2, queue, 0) // evictAfter defaults to queue
	slow, err := b.Subscribe(Filter{})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer slow.Close()

	// Fill the queue, then overflow it by exactly the eviction budget.
	for i := 0; i < 2*queue; i++ {
		b.Publish(Event{Seq: uint64(i + 1), Kind: KindRound})
	}
	select {
	case <-slow.Ready():
	case <-time.After(time.Second):
		t.Fatal("doorbell never rang for an evicted subscriber")
	}
	got, dropped, evicted := slow.Drain(nil)
	if !evicted {
		t.Fatalf("subscriber not evicted after %d drops (budget %d)", dropped, queue)
	}
	if dropped != queue {
		t.Fatalf("dropped = %d, want %d", dropped, queue)
	}
	if len(got) != queue || got[0].Seq != 1 {
		t.Fatalf("drained %d events starting at seq %d; want the %d oldest retained", len(got), got[0].Seq, queue)
	}
	st := b.Stats()
	if st.Dropped != queue || st.Evicted != 1 {
		t.Fatalf("stats = %+v, want dropped=%d evicted=1", st, queue)
	}
	// An evicted subscriber is dead weight, not a drop counter: further
	// publishes must not inflate its drops.
	b.Publish(Event{Seq: 100, Kind: KindRound})
	if _, d, _ := slow.Drain(nil); d != queue {
		t.Fatalf("post-eviction publish changed drop count to %d, want %d", d, queue)
	}
}

// TestFastConsumerSeesEverything: a consumer that keeps up (the
// publisher stays within the queue bound of the consumer's progress,
// as a round observer naturally does between sampled rounds) receives
// every published event exactly once, in order, with zero drops.
func TestFastConsumerSeesEverything(t *testing.T) {
	const total = 10_000
	const queue = 256
	b := NewBroadcaster(1, queue, 0)
	sub, err := b.Subscribe(Filter{})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()

	var consumed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= total; i++ {
			// Flow control: never run more than half a queue ahead of
			// the consumer, so any drop the test observes is a real
			// fan-out bug rather than a too-slow test goroutine.
			for int64(i)-consumed.Load() > queue/2 {
				runtime.Gosched()
			}
			b.Publish(Event{Seq: uint64(i), Kind: KindRound})
		}
	}()

	var got []Event
	deadline := time.After(10 * time.Second)
	for len(got) < total {
		select {
		case <-sub.Ready():
		case <-deadline:
			t.Fatalf("timed out with %d/%d events", len(got), total)
		}
		var dropped uint64
		got, dropped, _ = sub.Drain(got)
		consumed.Store(int64(len(got)))
		if dropped != 0 {
			t.Fatalf("a keeping-up consumer dropped %d events", dropped)
		}
	}
	wg.Wait()
	got, _, _ = sub.Drain(got) // anything between last Ready and producer exit
	if len(got) != total {
		t.Fatalf("received %d events, want %d", len(got), total)
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d (in-order, exactly-once)", i, ev.Seq, i+1)
		}
	}
}

// TestAdmissionLimit: Subscribe fails with ErrSubscribersFull at the
// limit and admits again after a Close frees the slot.
func TestAdmissionLimit(t *testing.T) {
	b := NewBroadcaster(2, 4, 0)
	s1, err := b.Subscribe(Filter{})
	if err != nil {
		t.Fatalf("Subscribe 1: %v", err)
	}
	s2, err := b.Subscribe(Filter{})
	if err != nil {
		t.Fatalf("Subscribe 2: %v", err)
	}
	defer s2.Close()
	if _, err := b.Subscribe(Filter{}); err != ErrSubscribersFull {
		t.Fatalf("Subscribe at limit: err = %v, want ErrSubscribersFull", err)
	}
	s1.Close()
	s3, err := b.Subscribe(Filter{})
	if err != nil {
		t.Fatalf("Subscribe after Close: %v", err)
	}
	s3.Close()
}

// TestNilBroadcaster: the nil broadcaster is the valid disabled state
// for every method.
func TestNilBroadcaster(t *testing.T) {
	var b *Broadcaster
	if b.Enabled() {
		t.Fatal("nil broadcaster reports Enabled")
	}
	b.Publish(Event{Kind: KindRound})
	if _, err := b.Subscribe(Filter{}); err != ErrSubscribersFull {
		t.Fatalf("nil Subscribe err = %v, want ErrSubscribersFull", err)
	}
	if st := b.Stats(); st != (BroadcastStats{}) {
		t.Fatalf("nil Stats = %+v, want zero", st)
	}
	if subs := b.Subscribers(); subs != nil {
		t.Fatalf("nil Subscribers = %v, want nil", subs)
	}
	var s *Subscription
	s.Close()
	if _, _, evicted := s.Drain(nil); evicted {
		t.Fatal("nil subscription reports evicted")
	}
}

// BenchmarkPublish measures the fan-out cost per event with one
// attached (never-draining, steadily dropping) subscriber — the cost
// Append pays per recorded event when streaming is on.
func BenchmarkPublish(b *testing.B) {
	bc := NewBroadcaster(2, 1024, 1<<62)
	sub, err := bc.Subscribe(Filter{})
	if err != nil {
		b.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()
	ev := Event{Kind: KindRound, Job: "J", Round: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bc.Publish(ev)
	}
}

// TestPublishZeroAlloc pins the streaming hot path at zero allocations,
// with and without the recorder in front: the nilguard analyzer forbids
// allocation under the locks, and this test forbids it anywhere on the
// path.
func TestPublishZeroAlloc(t *testing.T) {
	b := NewBroadcaster(2, 1024, 0)
	sub, err := b.Subscribe(Filter{})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()
	ev := Event{Kind: KindPhase, Job: "J", Round: 8, CheckMS: 0.5}

	if allocs := testing.AllocsPerRun(100, func() { b.Publish(ev) }); allocs != 0 {
		t.Errorf("Publish allocates %.1f/op with a subscriber attached, want 0", allocs)
	}
	sub.Drain(nil)

	r := NewRecorder(64, 1)
	r.SetBroadcaster(b)
	full := Event{Kind: KindPhase, Job: "J", Round: 8, Time: time.Unix(0, 1)}
	if allocs := testing.AllocsPerRun(100, func() { r.Append(full) }); allocs != 0 {
		t.Errorf("Append allocates %.1f/op with streaming attached, want 0", allocs)
	}
}
