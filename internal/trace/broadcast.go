// Streaming fan-out for the flight recorder: a Broadcaster tees every
// appended event to bounded per-subscriber queues, which the service's
// /v1/events SSE endpoint drains. The design constraints are the
// recorder's own (enforced by greedylint's nilguard): the publish path
// holds no lock while performing channel operations, allocates nothing,
// and never blocks on a slow consumer — a subscriber that cannot keep
// up accumulates drops against its own queue and is evicted once the
// drops pass its eviction budget, so one stalled TCP connection cannot
// stall the solver's round observers.
//
// Concurrency shape: the subscriber list is an immutable slice behind
// an atomic pointer (copy-on-write under Broadcaster.mu on
// subscribe/close, lock-free snapshot on publish). Each subscription
// owns a preallocated event ring guarded by its own mutex and a
// capacity-1 doorbell channel; Publish copies the event into the ring
// under sub.mu, then rings the doorbell with a non-blocking send after
// unlocking. Consumers block on the doorbell and drain the ring in
// batches.
package trace

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrSubscribersFull reports that the broadcaster is at its admission
// limit; the caller should reject the new stream (the SSE endpoint
// maps it to 503).
var ErrSubscribersFull = errors.New("trace: subscriber limit reached")

// Filter restricts which events a subscription receives. The zero
// value matches everything. Matching runs on the publish path, so it
// is a field test and a map probe — never an allocation.
type Filter struct {
	// Job, if nonempty, admits only events of that job id.
	Job string
	// Kinds, if nonempty, admits only events whose kind is a key.
	Kinds map[Kind]bool
}

func (f Filter) match(ev Event) bool {
	if f.Job != "" && ev.Job != f.Job {
		return false
	}
	if len(f.Kinds) > 0 && !f.Kinds[ev.Kind] {
		return false
	}
	return true
}

// BroadcastStats is an aggregate snapshot of a broadcaster's fan-out
// counters since construction.
type BroadcastStats struct {
	// Subscribers is the number of currently attached subscriptions
	// (evicted-but-not-yet-closed ones included; they still occupy an
	// admission slot until their consumer notices and closes).
	Subscribers int `json:"subscribers"`
	// Published counts events offered to the fan-out (after the
	// recorder accepted them; per-subscriber filters apply after this
	// count).
	Published uint64 `json:"published"`
	// Dropped counts events discarded across all subscriber queues
	// (including queues of since-closed subscribers).
	Dropped uint64 `json:"dropped"`
	// Evicted counts subscriptions force-detached for falling behind.
	Evicted uint64 `json:"evicted"`
}

// SubscriberStat describes one attached subscription.
type SubscriberStat struct {
	ID      uint64 `json:"id"`
	Dropped uint64 `json:"dropped"`
	Queued  int    `json:"queued"`
	Evicted bool   `json:"evicted"`
}

// Broadcaster fans recorder events out to bounded subscriber queues.
// The zero value is not usable; a nil *Broadcaster is valid and drops
// everything (streaming disabled).
type Broadcaster struct {
	mu   sync.Mutex // guards copy-on-write of subs and id assignment
	subs atomic.Pointer[[]*Subscription]

	nextID   uint64
	maxSubs  int
	queueCap int
	evictAt  uint64

	published atomic.Uint64
	dropped   atomic.Uint64
	evictions atomic.Uint64
}

// NewBroadcaster sizes the fan-out: at most maxSubs concurrent
// subscriptions, each with a queueCap-event ring, evicted once it has
// dropped evictAfter events. maxSubs <= 0 or queueCap <= 0 returns nil
// — the valid "streaming disabled" broadcaster. evictAfter <= 0
// defaults to queueCap (one full queue's worth of drops).
func NewBroadcaster(maxSubs, queueCap, evictAfter int) *Broadcaster {
	if maxSubs <= 0 || queueCap <= 0 {
		return nil
	}
	if evictAfter <= 0 {
		evictAfter = queueCap
	}
	return &Broadcaster{
		maxSubs:  maxSubs,
		queueCap: queueCap,
		evictAt:  uint64(evictAfter),
	}
}

// Enabled reports whether the broadcaster fans out anything (false for
// the nil broadcaster).
func (b *Broadcaster) Enabled() bool { return b != nil }

// Publish offers ev to every attached subscription whose filter
// matches, never blocking: a full queue counts a drop against that
// subscriber, and a subscriber whose drops pass its eviction budget is
// detached. Safe for concurrent use; allocation-free (nilguard's hot
// set covers it).
func (b *Broadcaster) Publish(ev Event) {
	if b == nil {
		return
	}
	b.published.Add(1)
	subs := b.subs.Load()
	if subs == nil {
		return
	}
	for _, s := range *subs {
		dropped, evicted, ring := s.offer(ev)
		if dropped {
			b.dropped.Add(1)
		}
		if evicted {
			b.evictions.Add(1)
		}
		if ring {
			// The doorbell send happens with no lock held: offer has
			// already released sub.mu, and the channel has capacity 1,
			// so the send never blocks the publisher.
			select {
			case s.bell <- struct{}{}:
			default:
			}
		}
	}
}

// Subscribe attaches a new subscription receiving every future event
// matching f. It fails with ErrSubscribersFull when maxSubs
// subscriptions are attached; the caller owns the returned
// subscription and must Close it.
func (b *Broadcaster) Subscribe(f Filter) (*Subscription, error) {
	if b == nil {
		return nil, ErrSubscribersFull
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var cur []*Subscription
	if p := b.subs.Load(); p != nil {
		cur = *p
	}
	if len(cur) >= b.maxSubs {
		return nil, ErrSubscribersFull
	}
	b.nextID++
	s := &Subscription{
		id:      b.nextID,
		b:       b,
		filter:  f,
		ring:    make([]Event, b.queueCap),
		evictAt: b.evictAt,
		bell:    make(chan struct{}, 1),
	}
	next := make([]*Subscription, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, s)
	b.subs.Store(&next)
	return s, nil
}

// remove detaches s from the subscriber list (idempotent).
func (b *Broadcaster) remove(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.subs.Load()
	if p == nil {
		return
	}
	cur := *p
	next := make([]*Subscription, 0, len(cur))
	for _, x := range cur {
		if x != s {
			next = append(next, x)
		}
	}
	b.subs.Store(&next)
}

// Stats returns the aggregate fan-out counters.
func (b *Broadcaster) Stats() BroadcastStats {
	if b == nil {
		return BroadcastStats{}
	}
	st := BroadcastStats{
		Published: b.published.Load(),
		Dropped:   b.dropped.Load(),
		Evicted:   b.evictions.Load(),
	}
	if p := b.subs.Load(); p != nil {
		st.Subscribers = len(*p)
	}
	return st
}

// Subscribers returns a per-subscription snapshot, ordered by
// subscription id (attachment order).
func (b *Broadcaster) Subscribers() []SubscriberStat {
	if b == nil {
		return nil
	}
	p := b.subs.Load()
	if p == nil {
		return nil
	}
	out := make([]SubscriberStat, 0, len(*p))
	for _, s := range *p {
		out = append(out, s.stat())
	}
	return out
}

// Subscription is one attached consumer: a bounded event ring fed by
// Publish and drained by the consumer, with a doorbell channel for
// wakeups. Methods are safe for one concurrent consumer alongside the
// publishers.
type Subscription struct {
	id     uint64
	b      *Broadcaster
	filter Filter
	bell   chan struct{}

	mu      sync.Mutex
	ring    []Event // fixed-size circular buffer
	start   int     // index of oldest queued event
	count   int     // queued events
	dropped uint64
	evictAt uint64
	evicted bool
	closed  bool
}

// ID returns the broadcaster-assigned subscription id (1-based,
// attachment order).
func (s *Subscription) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Ready returns the doorbell channel: it receives after new events (or
// an eviction) arrive. A single token coalesces any number of
// publishes, so a consumer must drain until empty after each receive.
func (s *Subscription) Ready() <-chan struct{} {
	if s == nil {
		return nil
	}
	return s.bell
}

// offer enqueues ev if the filter matches and the ring has room. It
// reports whether the event was dropped, whether this call evicted the
// subscription, and whether the doorbell should ring. No allocation,
// and no channel operation — the caller rings the doorbell after this
// returns (nilguard's hot set covers offer).
func (s *Subscription) offer(ev Event) (dropped, evicted, ring bool) {
	if !s.filter.match(ev) {
		return false, false, false
	}
	s.mu.Lock()
	if s.evicted || s.closed {
		s.mu.Unlock()
		return false, false, false
	}
	if s.count == len(s.ring) {
		s.dropped++
		if s.dropped >= s.evictAt {
			s.evicted = true
			s.mu.Unlock()
			// Ring so a consumer blocked on the doorbell wakes up and
			// observes the eviction instead of waiting forever.
			return true, true, true
		}
		s.mu.Unlock()
		return true, false, false
	}
	s.ring[(s.start+s.count)%len(s.ring)] = ev
	s.count++
	s.mu.Unlock()
	return false, false, true
}

// Drain appends every queued event to buf (which may be nil; pass a
// buffer with spare capacity to avoid allocation) and returns the
// extended buffer, the total events dropped so far, and whether the
// subscription has been evicted for falling behind. After an eviction
// the consumer should report the drop count and Close.
func (s *Subscription) Drain(buf []Event) ([]Event, uint64, bool) {
	if s == nil {
		return buf, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.count; i++ {
		buf = append(buf, s.ring[(s.start+i)%len(s.ring)])
	}
	s.start = (s.start + s.count) % len(s.ring)
	s.count = 0
	return buf, s.dropped, s.evicted
}

// Close detaches the subscription from its broadcaster (idempotent).
// Queued events are discarded; subsequent Publishes skip it.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already && s.b != nil {
		s.b.remove(s)
	}
}

// stat snapshots the subscription's counters.
func (s *Subscription) stat() SubscriberStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SubscriberStat{ID: s.id, Dropped: s.dropped, Queued: s.count, Evicted: s.evicted}
}
