// Package trace is the service's in-process flight recorder: a
// fixed-size ring buffer of structured events covering the whole job
// lifecycle (submit → checkout → queue → resolve → run → done), the
// per-round progress stream the paper's Figure 1 plots (sampled, so a
// million-round run does not flood the ring), per-Apply dynamic-repair
// events carrying the frontier cost counters, and HTTP request spans.
//
// The recorder is deliberately dumb: one mutex, one preallocated slice
// of value-typed events, no per-event allocation. Appending copies a
// fixed-size struct under a short critical section; queries copy
// matching events out under the same lock. A nil *Recorder is valid
// and records nothing, so call sites thread it unconditionally — the
// disabled path is a single pointer test.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an event.
type Kind string

// The event kinds, in job-lifecycle order.
const (
	// KindSubmit marks a job's acceptance into the queue. Name is the
	// problem; for deduplicated submissions Name is "dedup" and the
	// event points at the absorbing job.
	KindSubmit Kind = "submit"
	// KindCheckout records the registry graph acquisition performed at
	// submission (Name is the graph id, Dur the acquire time).
	KindCheckout Kind = "checkout"
	// KindQueue is the span a job spent queued: emitted when a worker
	// dequeues it, Dur = dequeue time - submit time.
	KindQueue Kind = "queue"
	// KindResolve records how a dynamic job's session was resolved:
	// Name is "hit" (exact-version session), "replay" (ancestor session
	// advanced by patch-chain repair), or "scratch" (no usable session;
	// computed from scratch and seeded one).
	KindResolve Kind = "resolve"
	// KindRound is a sampled round-observer report: the Figure 1
	// quantities of one round of the algorithm.
	KindRound Kind = "round"
	// KindPhase is a sampled per-phase profile of one engine round: the
	// round's wall time decomposed into the check/commit/reset
	// fork-joins and the window-slide remainder, plus the retry-tail
	// size. Emitted alongside KindRound when phase profiling is active.
	KindPhase Kind = "phase"
	// KindRepair is one Maintainer.Apply during a dynamic job's
	// patch-chain replay: the change-driven frontier repair cost of one
	// update batch.
	KindRepair Kind = "repair"
	// KindRun is the span a job spent executing: emitted at completion,
	// Dur = finish time - start time.
	KindRun Kind = "run"
	// KindDone marks a job's terminal transition; Name is the final
	// state (done, failed, cancelled).
	KindDone Kind = "done"
	// KindHTTP is one served HTTP request (Name is "METHOD /path").
	KindHTTP Kind = "http"
)

// Event is one recorded occurrence. It is a flat fixed-size value —
// kinds use the fields they need and leave the rest zero, which
// omitempty elides from the JSON wire form.
type Event struct {
	// Seq is the recorder-global sequence number (1-based, totally
	// ordered by Append).
	Seq uint64 `json:"seq"`
	// Time is the event timestamp (span events: the span's end).
	Time time.Time `json:"time"`
	Kind Kind      `json:"kind"`
	// Job is the job id the event belongs to ("" for HTTP events).
	Job string `json:"job,omitempty"`
	// Name carries the kind-specific label; see the Kind constants.
	Name string `json:"name,omitempty"`
	// DurMS is the span duration in milliseconds (0 for point events).
	DurMS float64 `json:"duration_ms,omitempty"`

	// Round-sample payload (KindRound, KindPhase).
	Round       int64 `json:"round,omitempty"`
	Prefix      int   `json:"prefix,omitempty"`
	Attempted   int64 `json:"attempted,omitempty"`
	Accepted    int64 `json:"accepted,omitempty"`
	Inspections int64 `json:"inspections,omitempty"`

	// Phase-profile payload (KindPhase): one sampled round's wall time
	// by engine phase, in milliseconds, plus the retry tail carried
	// into the next round.
	CheckMS   float64 `json:"check_ms,omitempty"`
	CommitMS  float64 `json:"commit_ms,omitempty"`
	ResetMS   float64 `json:"reset_ms,omitempty"`
	SlideMS   float64 `json:"slide_ms,omitempty"`
	RetryTail int     `json:"retry_tail,omitempty"`

	// Repair payload (KindRepair): the frontier cost of one batch.
	Batch        int `json:"batch,omitempty"`
	Seeds        int `json:"seeds,omitempty"`
	Visited      int `json:"visited,omitempty"`
	Flipped      int `json:"flipped,omitempty"`
	FrontierPeak int `json:"frontier_peak,omitempty"`
	Changed      int `json:"changed,omitempty"`

	// HTTP payload (KindHTTP).
	Status int   `json:"status,omitempty"`
	Bytes  int64 `json:"bytes,omitempty"`
}

// Recorder is the fixed-capacity event ring. The zero value is not
// usable; NewRecorder sizes the ring once and Append never grows it —
// old events are overwritten, which is the point: the recorder answers
// "what happened recently", not "what ever happened".
type Recorder struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever appended; buf[(total-1) % cap] is newest

	sampleEvery int64

	// bcast, when set, receives every appended event for live fan-out.
	// It is read with an atomic load on the Append path and published
	// to only after r.mu is released, so streaming adds nothing to the
	// recorder's critical section.
	bcast atomic.Pointer[Broadcaster]
}

// NewRecorder returns a recorder holding the last capacity events.
// capacity <= 0 returns nil — the valid "tracing disabled" recorder.
// roundSampleEvery controls the round-event stream: every Nth round of
// a running job is recorded; <= 0 disables round events entirely (the
// lifecycle and repair events are always recorded). Lifecycle call
// sites consult ShouldSampleRound on their hot path.
func NewRecorder(capacity int, roundSampleEvery int) *Recorder {
	if capacity <= 0 {
		return nil
	}
	return &Recorder{
		buf:         make([]Event, 0, capacity),
		sampleEvery: int64(roundSampleEvery),
	}
}

// Enabled reports whether the recorder records anything (false for the
// nil recorder).
func (r *Recorder) Enabled() bool { return r != nil }

// ShouldSampleRound reports whether the given 1-based round index is
// due for a KindRound event. It takes no lock and allocates nothing —
// this is the only trace call on the per-round hot path.
func (r *Recorder) ShouldSampleRound(round int64) bool {
	return r != nil && r.sampleEvery > 0 && round%r.sampleEvery == 0
}

// RoundSampleEvery returns the configured round sampling interval (0
// when round sampling is off or the recorder is nil).
func (r *Recorder) RoundSampleEvery() int {
	if r == nil || r.sampleEvery <= 0 {
		return 0
	}
	return int(r.sampleEvery)
}

// SetBroadcaster attaches a live fan-out: every event Append accepts
// is also offered to b (after the recorder's lock is released, with
// its Seq and Time stamped). A nil b detaches. Safe to call
// concurrently with Append.
func (r *Recorder) SetBroadcaster(b *Broadcaster) {
	if r == nil {
		return
	}
	r.bcast.Store(b)
}

// Broadcaster returns the attached fan-out (nil when streaming is
// off).
func (r *Recorder) Broadcaster() *Broadcaster {
	if r == nil {
		return nil
	}
	return r.bcast.Load()
}

// Append records an event, stamping Seq and, if unset, Time. The event
// is copied by value; Append performs no allocation once the ring is
// at capacity (the fill phase appends into preallocated backing).
func (r *Recorder) Append(ev Event) {
	if r == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	r.mu.Lock()
	r.total++
	ev.Seq = r.total
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[(r.total-1)%uint64(cap(r.buf))] = ev
	}
	r.mu.Unlock()
	// Fan out after unlocking: the broadcaster's queues have their own
	// locks, and the doorbell channel ops must never run under r.mu.
	if b := r.bcast.Load(); b != nil {
		b.Publish(ev)
	}
}

// Total returns the number of events ever appended (including ones the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Capacity returns the ring size (0 for the nil recorder).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Recent returns up to limit of the newest events, oldest first.
// limit <= 0 means everything the ring holds.
func (r *Recorder) Recent(limit int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Event, 0, limit)
	for i := n - limit; i < n; i++ {
		out = append(out, r.at(i))
	}
	return out
}

// Job returns every retained event of one job, oldest first. Events a
// full ring has overwritten are gone — a trace of a long-finished job
// may be partial or empty.
func (r *Recorder) Job(id string) []Event {
	if r == nil || id == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for i := 0; i < len(r.buf); i++ {
		if ev := r.at(i); ev.Job == id {
			out = append(out, ev)
		}
	}
	return out
}

// at returns the i-th oldest retained event; callers hold r.mu.
func (r *Recorder) at(i int) Event {
	n := uint64(len(r.buf))
	if n < uint64(cap(r.buf)) {
		// Ring not yet wrapped: storage order is age order.
		return r.buf[i]
	}
	return r.buf[(r.total+uint64(i))%n]
}
