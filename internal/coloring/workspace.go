package coloring

import "repro/internal/engine"

// Workspace holds the pooled per-run buffers of the coloring algorithms
// (the color array, the sequential reference's stamped scratch, and the
// engine's window buffers), reused across runs on same-or-smaller
// inputs. Buffers are reinitialized at the start of every run, so
// results are bit-identical to runs on fresh memory; the Result's color
// array is copied out, never pooled. Not safe for concurrent use; the
// zero value is ready.
type Workspace struct {
	colors []int32
	stamp  []int32
	eng    engine.Workspace
}
