// Package coloring implements greedy graph coloring — first-fit in
// priority order — as a problem on the shared speculative-prefix engine
// (internal/engine), extending the paper's conclusion ("we believe that
// our approach can be applied to sequential greedy algorithms for other
// problems") to a problem whose per-iterate decision is a value, not a
// bit: each vertex takes the smallest color absent among its
// earlier-priority neighbors. For a fixed order the parallel algorithm
// returns exactly the sequential first-fit coloring — the
// lexicographically-first greedy coloring — at any prefix size, grain
// and thread count; the number of colors is at most maxdeg+1.
package coloring

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
)

// uncolored marks a vertex whose color is not yet decided.
const uncolored int32 = -1

// Stats reuses the engine counters (Rounds, Attempts, EdgeInspections,
// PrefixSize) with the same conventions as MIS/MM/SF.
type Stats = core.Stats

// Result is the outcome of a greedy coloring computation.
type Result struct {
	// Colors[v] is the color of vertex v, in [0, NumColors).
	Colors []int32
	// NumColors is the number of distinct colors used (max color + 1).
	NumColors int
	// Stats are the run's cost counters.
	Stats Stats
}

func newResult(colors []int32, stats Stats) *Result {
	out := append([]int32(nil), colors...)
	num := int32(0)
	for _, c := range out {
		if c+1 > num {
			num = c + 1
		}
	}
	return &Result{Colors: out, NumColors: int(num), Stats: stats}
}

// Equal reports whether two results assign identical colors.
func (r *Result) Equal(other *Result) bool {
	if len(r.Colors) != len(other.Colors) {
		return false
	}
	for i := range r.Colors {
		if r.Colors[i] != other.Colors[i] {
			return false
		}
	}
	return true
}

// Options configures the parallel coloring algorithm; the fields mirror
// core.Options (PrefixSize/PrefixFrac apply to the number of vertices).
type Options struct {
	PrefixSize int
	PrefixFrac float64
	Grain      int
	// Adaptive replaces the fixed window with the engine's measured
	// schedule (see core.Options.Adaptive); the coloring stays
	// bit-identical to the sequential first-fit one for every schedule.
	Adaptive bool
	// OnRound, if non-nil, is called after every round with that round's
	// statistics (see core.RoundStat), on the round loop's goroutine.
	OnRound func(core.RoundStat)
	// Clock, if non-nil, enables the engine's per-phase wall-time
	// attribution (see engine.Options.Clock); telemetry-only, injected
	// by the caller.
	Clock func() int64
	// Workspace, if non-nil, supplies pooled per-run buffers reused
	// across runs. nil means allocate fresh buffers.
	Workspace *Workspace
}

// engineOptions translates the coloring options into the engine's form,
// wiring the pooled window buffers when ws is non-nil.
func (o Options) engineOptions(ws *engine.Workspace) engine.Options {
	return engine.Options{
		PrefixSize: o.PrefixSize,
		PrefixFrac: o.PrefixFrac,
		Adaptive:   o.Adaptive,
		Grain:      o.Grain,
		OnRound:    o.OnRound,
		Clock:      o.Clock,
		Workspace:  ws,
	}
}

// seqCancelMask paces the sequential scan's cancellation checks, as in
// core.SequentialMISCtx.
const seqCancelMask = 1<<12 - 1

// SequentialColoring computes the first-fit greedy coloring of g under
// ord: vertices in priority order, each taking the smallest color not
// used by an already-colored neighbor.
func SequentialColoring(g *graph.Graph, ord core.Order) *Result {
	res, err := SequentialColoringCtx(context.Background(), g, ord, Options{})
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// SequentialColoringCtx is SequentialColoring with cooperative
// cancellation (ctx is checked every few thousand vertices). Pooled
// buffers come from opt.Workspace when set.
func SequentialColoringCtx(ctx context.Context, g *graph.Graph, ord core.Order, opt Options) (*Result, error) {
	n := g.NumVertices()
	if ord.Len() != n {
		panic("coloring: order size does not match graph")
	}
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	colors := engine.Grow32(&ws.colors, n)
	engine.Fill32(colors, uncolored)
	// stamp[c] == v+1 marks color c as used by a neighbor of the vertex
	// currently being decided; the stamped scratch avoids clearing it
	// between vertices. Size maxdeg+1: first-fit never needs a color
	// beyond a vertex's degree.
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(int32(v)); d > maxDeg {
			maxDeg = d
		}
	}
	stamp := engine.Grow32(&ws.stamp, maxDeg+1)
	engine.Fill32(stamp, 0)

	var inspections int64
	for r := 0; r < n; r++ {
		if r&seqCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		v := ord.Order[r]
		mark := int32(r) + 1
		for _, u := range g.Neighbors(v) {
			inspections++
			if c := colors[u]; c >= 0 && int(c) < len(stamp) {
				stamp[c] = mark
			}
		}
		c := int32(0)
		for stamp[c] == mark {
			c++
		}
		colors[v] = c
	}
	return newResult(colors, Stats{
		Rounds:          int64(n),
		Attempts:        int64(n),
		EdgeInspections: inspections,
	}), nil
}

// PrefixColoring computes the first-fit greedy coloring with the
// prefix-based speculative engine. Each round, every active vertex
// scans its earlier-priority neighbors: if any is still uncolored the
// vertex retries next round; otherwise it takes the smallest absent
// color and commits. The earliest active vertex always commits, so the
// loop makes progress, and because a vertex decides only after all of
// its earlier neighbors are final, the coloring equals the sequential
// first-fit one for every window schedule, grain and thread count.
func PrefixColoring(g *graph.Graph, ord core.Order, opt Options) *Result {
	res, err := PrefixColoringCtx(context.Background(), g, ord, opt)
	if err != nil {
		panic(err) // unreachable: only cancellation can fail
	}
	return res
}

// PrefixColoringCtx is PrefixColoring with cooperative cancellation:
// ctx is checked once per round, so a cancelled context aborts within
// one round and returns ctx.Err(). Pooled buffers come from
// opt.Workspace when set.
func PrefixColoringCtx(ctx context.Context, g *graph.Graph, ord core.Order, opt Options) (*Result, error) {
	n := g.NumVertices()
	if ord.Len() != n {
		panic("coloring: order size does not match graph")
	}
	ws := opt.Workspace
	if ws == nil {
		ws = new(Workspace)
	}
	colors := engine.Grow32(&ws.colors, n)
	engine.Fill32(colors, uncolored)

	prob := &colorProblem{g: g, rank: ord.Rank, colors: colors}
	stats, err := engine.Run(ctx, ord.Order, prob, opt.engineOptions(&ws.eng))
	if err != nil {
		return nil, err
	}
	return newResult(colors, stats), nil
}

// colorProblem is the engine adapter for first-fit coloring. The check
// phase reads only colors written in previous rounds and the commit
// phase writes each vertex's own color, so no atomics are needed — the
// engine's fork-join barrier is the synchronization, exactly as in the
// MIS problem. The outcome payload is color+1: the engine only gives
// meaning to zero ("retry"), so any committed color, including color 0,
// maps to a nonzero outcome.
type colorProblem struct {
	g      *graph.Graph
	rank   []int32
	colors []int32
}

func (p *colorProblem) Check(act, outcome []int32, lo, hi int) int64 {
	var local int64
	for i := lo; i < hi; i++ {
		c, insp := checkFirstFit(p.g, act[i], p.rank, p.colors)
		local += insp
		if c >= 0 {
			outcome[i] = c + 1
		}
	}
	return local
}

func (p *colorProblem) Commit(act, outcome []int32, lo, hi int) int64 {
	for i := lo; i < hi; i++ {
		if outcome[i] != engine.Undecided {
			p.colors[act[i]] = outcome[i] - 1
		}
	}
	return 0
}

// checkFirstFit decides vertex v against its earlier-priority
// neighbors: it returns (-1, inspections) if some earlier neighbor is
// still uncolored (retry next round), else the smallest color absent
// among them. The scan is allocation-free: it finds the answer through
// 64-color bitmask windows, rescanning the neighbor list once per
// window, so a vertex whose answer is color c costs
// O(deg·⌈(c+1)/64⌉) inspections — one pass for the overwhelming
// majority of vertices, and never any per-vertex scratch that the
// engine's concurrent chunks would have to allocate or share.
func checkFirstFit(g *graph.Graph, v int32, rank []int32, colors []int32) (int32, int64) {
	rv := rank[v]
	var inspections int64
	for base := int32(0); ; base += 64 {
		var mask uint64
		for _, u := range g.Neighbors(v) {
			if rank[u] >= rv {
				continue
			}
			inspections++
			c := colors[u]
			if c == uncolored {
				return -1, inspections
			}
			if c >= base && c < base+64 {
				mask |= 1 << uint(c-base)
			}
		}
		if mask != ^uint64(0) {
			return base + int32(bits.TrailingZeros64(^mask)), inspections
		}
	}
}

// Verify checks that colors is a proper coloring of g: every vertex
// colored (non-negative) and no edge monochromatic. It returns nil on
// success and a descriptive error on the first violation.
func Verify(g *graph.Graph, colors []int32) error {
	n := g.NumVertices()
	if len(colors) != n {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(colors), n)
	}
	for v := 0; v < n; v++ {
		if colors[v] < 0 {
			return fmt.Errorf("coloring: vertex %d uncolored", v)
		}
		for _, u := range g.Neighbors(int32(v)) {
			if colors[u] == colors[int32(v)] {
				return fmt.Errorf("coloring: edge {%d,%d} monochromatic (color %d)", v, u, colors[v])
			}
		}
	}
	return nil
}
