package coloring

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func testGraphs(tb testing.TB) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"random":   graph.Random(600, 2400, 7),
		"rmat":     graph.RMat(9, 2000, 11, graph.DefaultRMatOptions()),
		"grid":     graph.Grid2D(24, 25),
		"star":     graph.Star(301),
		"complete": graph.Complete(41),
		"path":     graph.Path(500),
		"empty":    graph.Empty(128),
		"tree":     graph.RandomTree(400, 3),
	}
}

// The prefix coloring must equal the sequential first-fit coloring for
// every prefix size, fraction and grain — the engine-parity oracle for
// the coloring problem.
func TestPrefixColoringMatchesSequential(t *testing.T) {
	for name, g := range testGraphs(t) {
		n := g.NumVertices()
		ord := core.NewRandomOrder(n, 99)
		want := SequentialColoring(g, ord)
		if err := Verify(g, want.Colors); err != nil {
			t.Fatalf("%s: sequential reference invalid: %v", name, err)
		}
		for _, opt := range []Options{
			{PrefixSize: 1},
			{PrefixSize: 7, Grain: 3},
			{PrefixFrac: 0.01},
			{PrefixFrac: 0.2, Grain: 17},
			{PrefixFrac: 1},
			{Adaptive: true},
			{Adaptive: true, PrefixFrac: 0.05},
		} {
			got := PrefixColoring(g, ord, opt)
			if !got.Equal(want) {
				t.Fatalf("%s opts %+v: prefix coloring differs from sequential", name, opt)
			}
			if err := Verify(g, got.Colors); err != nil {
				t.Fatalf("%s opts %+v: %v", name, opt, err)
			}
		}
	}
}

// The identity order on a path forces the worst-case dependence chain;
// the result must still match the sequential coloring.
func TestPrefixColoringIdentityOrder(t *testing.T) {
	g := graph.Path(300)
	ord := core.IdentityOrder(300)
	want := SequentialColoring(g, ord)
	got := PrefixColoring(g, ord, Options{PrefixFrac: 1})
	if !got.Equal(want) {
		t.Fatal("identity order: prefix differs from sequential")
	}
	if want.NumColors != 2 {
		t.Fatalf("identity-order path should 2-color, got %d", want.NumColors)
	}
}

// Determinism across thread counts: the paper's central claim carries
// to the coloring problem on the shared engine.
func TestPrefixColoringThreadIndependent(t *testing.T) {
	g := graph.Random(900, 5400, 21)
	ord := core.NewRandomOrder(900, 5)
	want := SequentialColoring(g, ord)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		got := PrefixColoring(g, ord, Options{PrefixFrac: 0.05, Grain: 7})
		if !got.Equal(want) {
			t.Fatalf("GOMAXPROCS=%d: coloring differs from sequential", procs)
		}
		adaptive := PrefixColoring(g, ord, Options{Adaptive: true})
		if !adaptive.Equal(want) {
			t.Fatalf("GOMAXPROCS=%d: adaptive coloring differs from sequential", procs)
		}
	}
}

// Workspace reuse must not leak state between runs.
func TestColoringWorkspaceReuse(t *testing.T) {
	ws := new(Workspace)
	big := graph.Random(500, 2000, 3)
	small := graph.Complete(20)
	bigOrd := core.NewRandomOrder(500, 1)
	smallOrd := core.NewRandomOrder(20, 2)
	wantBig := SequentialColoring(big, bigOrd)
	wantSmall := SequentialColoring(small, smallOrd)
	for i := 0; i < 3; i++ {
		if got := PrefixColoring(big, bigOrd, Options{Workspace: ws, PrefixFrac: 0.1}); !got.Equal(wantBig) {
			t.Fatalf("run %d big: pooled run differs", i)
		}
		if got := PrefixColoring(small, smallOrd, Options{Workspace: ws, Adaptive: true}); !got.Equal(wantSmall) {
			t.Fatalf("run %d small: pooled run differs", i)
		}
	}
}

// Cancellation aborts within a round with ctx.Err().
func TestPrefixColoringCancel(t *testing.T) {
	g := graph.Random(400, 1600, 9)
	ord := core.NewRandomOrder(400, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PrefixColoringCtx(ctx, g, ord, Options{}); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := SequentialColoringCtx(ctx, g, ord, Options{}); err != context.Canceled {
		t.Fatalf("sequential: want context.Canceled, got %v", err)
	}
}

// The complete graph needs exactly n colors; a high-color vertex
// exercises the multi-window path of checkFirstFit.
func TestColoringManyColors(t *testing.T) {
	g := graph.Complete(130) // forces colors 0..129: three 64-color windows
	ord := core.NewRandomOrder(130, 17)
	want := SequentialColoring(g, ord)
	if want.NumColors != 130 {
		t.Fatalf("complete graph: want 130 colors, got %d", want.NumColors)
	}
	got := PrefixColoring(g, ord, Options{PrefixFrac: 0.3})
	if !got.Equal(want) {
		t.Fatal("complete graph: prefix differs from sequential")
	}
}

func BenchmarkPrefixColoring(b *testing.B) {
	g := graph.Random(20000, 100000, 42)
	ord := core.NewRandomOrder(20000, 42)
	ws := new(Workspace)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrefixColoring(g, ord, Options{Workspace: ws})
	}
}
