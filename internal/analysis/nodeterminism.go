package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Nodeterminism forbids machine- and run-dependent inputs in the
// result-affecting packages — the packages whose outputs feed a dedup
// key, a checksum, or a serialized payload. The paper's guarantee
// (deterministic greedy results at any processor count) is only
// operationally useful because nothing on the result path reads the
// clock, the environment, global randomness, or Go's randomized map
// iteration order; one such read silently breaks byte-identical
// cross-machine caching.
//
// Forbidden in scope packages:
//   - time.Now / time.Since (wall-clock on a result path)
//   - importing math/rand or math/rand/v2 (global, seed-racy RNG; the
//     repo's deterministic splitmix64 lives in internal/rng)
//   - os.Getenv / os.LookupEnv / os.Environ (environment-dependent
//     results)
//   - ranging over a map (iteration order is randomized per run)
//   - runtime.GOMAXPROCS / parallel.Procs (machine-dependent), allowed
//     only at sites annotated //lint:allow nodeterminism <reason> —
//     the adaptive-window growth cap in internal/core/adaptive.go is
//     the one argued-safe site (the cap bounds growth, never the
//     schedule's dependence on per-round counters).
//   - importing repro/internal/fault (fault injection): failpoints are
//     exempt from this analyzer precisely because they live outside
//     the result path, where they may perturb when and whether work
//     completes but never what bytes are computed. A failpoint planted
//     in a scope package would void that argument, so the import
//     itself is the violation.
var Nodeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid clock, env, global RNG, map-order, GOMAXPROCS and fault-injection in result-affecting packages",
	Scope: scopeByBase(
		"core", "matching", "spanning", "dynamic", "engine",
		"coloring", "setcover",
		"graph", "rng", "unionfind", "reservations",
	),
	Run: runNodeterminism,
}

func runNodeterminism(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in a result-affecting package: use internal/rng's seeded splitmix64 so results are a pure function of the seed", p)
			}
			if p == "repro/internal/fault" {
				pass.Reportf(imp.Pos(), "import of %s in a result-affecting package: failpoints may perturb scheduling and I/O but never the computed bytes — plant them in the service or persistence layers instead", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				switch {
				case isPkgFunc(fn, "time", "Now", "Since"):
					pass.Reportf(n.Pos(), "time.%s in a result-affecting package: wall-clock reads make results machine- and run-dependent", fn.Name())
				case isPkgFunc(fn, "os", "Getenv", "LookupEnv", "Environ"):
					pass.Reportf(n.Pos(), "os.%s in a result-affecting package: environment reads make results machine-dependent", fn.Name())
				case isPkgFunc(fn, "runtime", "GOMAXPROCS"),
					isPkgFunc(fn, "repro/internal/parallel", "Procs"):
					pass.Reportf(n.Pos(), "%s.%s reads GOMAXPROCS in a result-affecting package: results must be identical at every processor count (annotate //lint:allow nodeterminism <reason> where machine-independence of the RESULT is argued)", fn.Pkg().Name(), fn.Name())
				}
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "range over map in a result-affecting package: iteration order is randomized per run — iterate a sorted key slice instead")
				}
			}
			return true
		})
	}
}
