package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Forrangealias checks the function literals handed to the fork-join
// primitives:
//
//   - parallel.ForRange / parallel.For bodies and parallel.Reduce leaf
//     functions run concurrently with themselves, so they must not
//     write captured (free) variables through anything but a disjoint
//     index — the element-write idiom `out[i] = ...` is the
//     deterministic-parallelism contract, while `captured += x` or
//     `shared.field = v` is a data race whose loser is
//     schedule-dependent, exactly the nondeterminism the paper's
//     reservation discipline exists to eliminate. Taking the address of
//     a captured non-indexed variable is flagged too, unless the
//     address feeds a sync/atomic call (the sanctioned way to share a
//     scalar).
//
//   - parallel.Do thunks each run once, so writing DISTINCT captured
//     result variables from distinct thunks is the normal fork-join
//     result-passing idiom; only the same variable written from two or
//     more thunks of one Do call is a race and is flagged.
//
// A body that takes a lock (calls .Lock() on anything) is exempt from
// the write checks: mutual exclusion makes the writes safe, though the
// result may still be order-dependent — that is the
// sequential-equivalence tests' problem, not a torn write.
var Forrangealias = &Analyzer{
	Name: "forrangealias",
	Doc:  "parallel fork-join bodies must not write captured state without atomics or indexed disjointness",
	Run:  runForrangealias,
}

func runForrangealias(pass *Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			switch {
			case isPkgFunc(fn, "repro/internal/parallel", "ForRange", "For"):
				for _, arg := range call.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkConcurrentBody(pass, lit, nil)
					}
				}
			case isPkgFunc(fn, "repro/internal/parallel", "Reduce"):
				// Reduce(n, grain, identity, leaf, combine): only the leaf
				// runs concurrently; combine folds the chunk results
				// sequentially after the join.
				if len(call.Args) == 5 {
					if lit, ok := ast.Unparen(call.Args[3]).(*ast.FuncLit); ok {
						checkConcurrentBody(pass, lit, nil)
					}
				}
			case isPkgFunc(fn, "repro/internal/parallel", "Do"):
				checkDoThunks(pass, call)
			}
			return true
		})
	}
}

// freeVarFunc returns a resolver mapping identifiers to the captured
// variable they name, or nil for identifiers declared inside lit.
func freeVarFunc(info *types.Info, lit *ast.FuncLit) func(*ast.Ident) *types.Var {
	return func(id *ast.Ident) *types.Var {
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return nil
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return nil // declared inside the body: per-invocation state
		}
		return v
	}
}

// bodyTakesLock reports whether the literal calls .Lock() on anything.
func bodyTakesLock(lit *ast.FuncLit) bool {
	takes := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
				takes = true
			}
		}
		return !takes
	})
	return takes
}

// checkConcurrentBody flags unsynchronized writes to free variables
// inside a literal that runs concurrently with itself. When collect is
// non-nil the findings are recorded there instead of reported (used by
// the Do cross-thunk check).
func checkConcurrentBody(pass *Pass, lit *ast.FuncLit, collect map[*types.Var]ast.Expr) {
	info := pass.TypesInfo
	free := freeVarFunc(info, lit)
	if bodyTakesLock(lit) {
		return
	}
	walk(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v, root := nonIndexedFreeTarget(info, lhs, free); v != nil {
					if collect != nil {
						if _, ok := collect[v]; !ok {
							collect[v] = root
						}
						continue
					}
					pass.Reportf(root.Pos(), "parallel body writes captured variable %s without an index or atomic: concurrent chunks race and the winner is schedule-dependent — write through a disjoint index, use sync/atomic, or reduce per-chunk locals after the join", v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v, root := nonIndexedFreeTarget(info, n.X, free); v != nil {
				if collect != nil {
					if _, ok := collect[v]; !ok {
						collect[v] = root
					}
					return true
				}
				pass.Reportf(root.Pos(), "parallel body increments captured variable %s without an index or atomic: concurrent chunks race — accumulate a per-chunk local and combine after the join, or use sync/atomic", v.Name())
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND || collect != nil {
				return true
			}
			if v, root := nonIndexedFreeTarget(info, n.X, free); v != nil && !addressFeedsAtomic(info, stack) {
				pass.Reportf(root.Pos(), "parallel body takes the address of captured variable %s: aliasing shared non-indexed state into concurrent chunks invites torn access — pass &slice[i] or feed the address to sync/atomic", v.Name())
			}
		}
		return true
	})
}

// checkDoThunks reports captured variables written by two or more
// function-literal thunks of one parallel.Do call.
func checkDoThunks(pass *Pass, call *ast.CallExpr) {
	type hit struct {
		count int
		site  ast.Expr
	}
	writes := map[*types.Var]*hit{}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		perThunk := map[*types.Var]ast.Expr{}
		checkConcurrentBody(pass, lit, perThunk)
		for v, site := range perThunk {
			h := writes[v]
			if h == nil {
				h = &hit{}
				writes[v] = h
			}
			h.count++
			h.site = site
		}
	}
	for v, h := range writes {
		if h.count >= 2 {
			pass.Reportf(h.site.Pos(), "captured variable %s is written by %d thunks of one parallel.Do call: the thunks run concurrently — give each thunk its own result variable", v.Name(), h.count)
		}
	}
}

// nonIndexedFreeTarget reports whether expr is a write target rooted at
// a free variable with no index anywhere on the path (a plain ident, or
// a selector/deref chain over a free root). Indexed targets (out[i],
// s.buf[i].field) are the sanctioned disjoint-element idiom and return
// nil.
func nonIndexedFreeTarget(info *types.Info, expr ast.Expr, free func(*ast.Ident) *types.Var) (*types.Var, ast.Expr) {
	root := ast.Unparen(expr)
	for {
		switch e := root.(type) {
		case *ast.SelectorExpr:
			// A selector to a field keeps walking; a package-qualified
			// ident is not a write target we track.
			if _, ok := info.Uses[e.Sel].(*types.Var); !ok {
				return nil, nil
			}
			root = ast.Unparen(e.X)
		case *ast.StarExpr:
			root = ast.Unparen(e.X)
		case *ast.IndexExpr:
			return nil, nil // element write: disjoint by construction
		case *ast.Ident:
			if e.Name == "_" {
				return nil, nil
			}
			if v := free(e); v != nil {
				return v, expr
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// addressFeedsAtomic reports whether the innermost enclosing call of
// the &x expression is a sync/atomic function or one of the parallel
// package's atomic write helpers (WriteMin/WriteMax/WriteOnce).
func addressFeedsAtomic(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			fn := calleeFunc(info, p)
			if fn == nil || fn.Pkg() == nil {
				return false
			}
			if fn.Pkg().Path() == "sync/atomic" {
				return true
			}
			return isPkgFunc(fn, "repro/internal/parallel",
				"WriteMin32", "WriteMin64", "WriteMax32", "WriteOnce32")
		default:
			return false
		}
	}
	return false
}
