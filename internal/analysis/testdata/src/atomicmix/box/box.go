// Package box is an atomicmix fixture: fields touched through
// sync/atomic anywhere in the package must be touched that way
// everywhere, and typed atomics must only be used through their
// methods.
package box

import "sync/atomic"

// Counter mixes access styles on purpose.
type Counter struct {
	hits   int64
	misses int64
	cold   int64
	typed  atomic.Int64
}

// Hit is the atomic writer that makes hits an atomic field.
func (c *Counter) Hit() { atomic.AddInt64(&c.hits, 1) }

// Hits reads the atomic field without the atomic op.
func (c *Counter) Hits() int64 { return c.hits } // want `plain read of field hits`

// HitsOK is the correct read.
func (c *Counter) HitsOK() int64 { return atomic.LoadInt64(&c.hits) }

// Set stores the atomic field without the atomic op.
func (c *Counter) Set(v int64) { c.hits = v } // want `plain write of field hits`

// Bump mixes an increment in.
func (c *Counter) Bump() { c.hits++ } // want `plain write of field hits`

// Miss uses atomics for misses too.
func (c *Counter) Miss() { atomic.AddInt64(&c.misses, 1) }

// Reset reinitializes the counter before it is shared.
//
//lint:allow atomicmix pre-publication reset: no goroutine holds the counter while Reset runs
func (c *Counter) Reset() {
	c.hits = 0
	c.misses = 0
}

// Cold is never accessed atomically, so plain access is fine.
func (c *Counter) Cold() int64 { return c.cold }

// SetCold likewise.
func (c *Counter) SetCold(v int64) { c.cold = v }

// TypedOK drives the typed atomic through its methods.
func (c *Counter) TypedOK() int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

// TypedCopy copies the typed atomic out as a plain value.
func (c *Counter) TypedCopy() int64 {
	snapshot := c.typed // want `plain value`
	return snapshot.Load()
}
