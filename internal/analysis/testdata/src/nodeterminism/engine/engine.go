// Package engine is a nodeterminism fixture shaped like the shared
// speculative check/commit engine: its import-path base is in the
// analyzer's scope, so a round loop that sizes its window from the
// machine or brakes on the wall clock must be flagged.
package engine

import (
	"runtime"
	"time"

	"repro/internal/parallel"
)

// RunRound drives one speculative round — with every machine-dependent
// input the real engine must never read.
func RunRound(active []int32) int {
	window := runtime.GOMAXPROCS(0) * 8 // want `reads GOMAXPROCS`
	if window > len(active) {
		window = len(active)
	}
	start := time.Now() // want `time\.Now`
	committed := 0
	for i := 0; i < window; i++ {
		if active[i]%2 == 0 {
			committed++
		}
	}
	if time.Since(start) > time.Millisecond { // want `time\.Since`
		window /= 2
	}
	return committed
}

// Slack derives the controller's slack from the worker count.
func Slack() int {
	return parallel.Procs() * 8 // want `reads GOMAXPROCS`
}

// SlackAllowed is the annotated escape hatch the real engine uses for
// its growth cap: the directive suppresses the finding.
func SlackAllowed(n int) int {
	c := parallel.Procs() * 8 //lint:allow nodeterminism cap only bounds window growth; the schedule stays a function of per-round counters
	if c > n {
		c = n
	}
	return c
}

// Observers notifies per-problem observers in map order.
func Observers(hooks map[string]func(int), round int) {
	for _, h := range hooks { // want `range over map`
		h(round)
	}
}
