// Package core is a nodeterminism fixture: its import-path base matches
// a result-affecting package, so clock/env/RNG/map-order/GOMAXPROCS
// reads must be flagged.
package core

import (
	"math/rand" // want `import of math/rand`
	"os"
	"runtime"
	"time"

	"repro/internal/fault" // want `import of repro/internal/fault`
	"repro/internal/parallel"
)

// Seed derives a priority seed — from all the wrong places.
func Seed() int64 {
	s := time.Now().UnixNano()   // want `time\.Now`
	if os.Getenv("SEED") != "" { // want `os\.Getenv`
		s++
	}
	s += int64(rand.Intn(100))
	return s
}

// Elapsed measures inside a result path.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want `time\.Since`
}

// Window sizes a round window from the machine.
func Window() int {
	w := runtime.GOMAXPROCS(0) // want `reads GOMAXPROCS`
	w += parallel.Procs()      // want `reads GOMAXPROCS`
	return w
}

// GrowCap is the annotated escape hatch: the cap bounds growth and is
// argued machine-independent, so the directive suppresses the finding.
func GrowCap(n int) int {
	c := parallel.Procs() * 256 //lint:allow nodeterminism growth cap only bounds the window; result argued machine-independent
	if c > n {
		c = n
	}
	return c
}

// Serialize feeds map iteration order into an output slice.
func Serialize(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `range over map`
		out = append(out, k)
	}
	return out
}

// SliceRange iterates a slice: fine.
func SliceRange(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Perturb plants a failpoint on the result path — forbidden: the
// failpoint exemption rests on fault living outside these packages.
func Perturb() error {
	return fault.Inject(fault.WorkerRun)
}
