// Package core is a ctxround fixture: its import-path base matches an
// algorithm package, so context-taking functions with loops must
// consult the context inside a loop body.
package core

import "context"

// GoodDirect checks ctx.Err() every round.
func GoodDirect(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// GoodDone selects on Done inside the loop.
func GoodDone(ctx context.Context, work chan int) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case w := <-work:
			if w < 0 {
				return nil
			}
		}
	}
}

// GoodDelegated passes ctx to a per-iteration callee.
func GoodDelegated(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := step(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

// BadPreflightOnly checks before the loop, never inside it.
func BadPreflightOnly(ctx context.Context, n int) error { // want `no loop body consults the context`
	if err := ctx.Err(); err != nil {
		return err
	}
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	_ = total
	return nil
}

// BadRange ranges without ever consulting ctx.
func BadRange(ctx context.Context, xs []int) error { // want `no loop body consults the context`
	_ = ctx
	s := 0
	for _, x := range xs {
		s += x
	}
	_ = s
	return nil
}

// NoLoops takes ctx but has nothing to cancel mid-flight: fine.
func NoLoops(ctx context.Context) error { return ctx.Err() }

// LiteralLoopsOnly loops only inside a function literal — the
// intra-round work — so the per-round contract does not apply to it.
func LiteralLoopsOnly(ctx context.Context, xs []int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sum := func() int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	_ = sum()
	return nil
}

func step(ctx context.Context, i int) error {
	_ = i
	return ctx.Err()
}
