// Package pkg is an allow-audit fixture: directives without a reason
// string or naming an unknown analyzer must be reported, and must not
// suppress anything.
package pkg

//lint:allow atomicmix
var reasonless int

//lint:allow frobnicator this analyzer does not exist
var unknown int
