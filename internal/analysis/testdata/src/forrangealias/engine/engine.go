// Package engine is a forrangealias fixture shaped like the shared
// speculative engine's two-phase round: the check and commit closures
// run over chunks of the active window concurrently, so captured
// scalars written without an index or an atomic are races.
package engine

import (
	"sync/atomic"

	"repro/internal/parallel"
)

// CheckRace tallies inspections into a captured counter from the
// concurrent check phase.
func CheckRace(active, outcome []int32) int64 {
	var inspected int64
	parallel.ForRange(len(active), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			outcome[i] = active[i] % 2
			inspected++ // want `increments captured variable inspected`
		}
	})
	return inspected
}

// CheckAtomic drains per-chunk counts through an atomic: sanctioned.
func CheckAtomic(active, outcome []int32) int64 {
	var inspected int64
	parallel.ForRange(len(active), 0, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			outcome[i] = active[i] % 2
			local++
		}
		atomic.AddInt64(&inspected, local)
	})
	return inspected
}

// CommitAlias smuggles the address of a captured scalar into the
// commit phase.
func CommitAlias(outcome []int32) {
	var last int32
	parallel.ForRange(len(outcome), 0, func(lo, hi int) {
		p := &last // want `takes the address of captured variable last`
		for i := lo; i < hi; i++ {
			if outcome[i] != 0 {
				*p = outcome[i]
			}
		}
	})
}

// CommitDisjoint writes disjoint outcome slots: the engine's idiom.
func CommitDisjoint(state, outcome []int32) {
	parallel.ForRange(len(outcome), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if outcome[i] == 1 {
				state[i] = 1
			}
		}
	})
}
