// Package work is a forrangealias fixture: function literals handed to
// the fork-join primitives must not write captured state without an
// index or an atomic.
package work

import (
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// SumRace accumulates into a captured variable from concurrent chunks.
func SumRace(xs []int64) int64 {
	var total int64
	parallel.ForRange(len(xs), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] // want `writes captured variable total`
		}
	})
	return total
}

// SumAtomic shares the scalar the sanctioned way.
func SumAtomic(xs []int64) int64 {
	var total int64
	parallel.ForRange(len(xs), 0, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += xs[i]
		}
		atomic.AddInt64(&total, local)
	})
	return total
}

// Fill writes disjoint elements: the deterministic-parallelism idiom.
func Fill(out []int32) {
	parallel.For(len(out), 0, func(i int) {
		out[i] = int32(i)
	})
}

// CountRace increments a captured counter per item.
func CountRace(xs []int) int {
	n := 0
	parallel.For(len(xs), 0, func(i int) {
		if xs[i] > 0 {
			n++ // want `increments captured variable n`
		}
	})
	return n
}

// CountLocked serializes with a mutex: exempt.
func CountLocked(xs []int) int {
	n := 0
	var mu sync.Mutex
	parallel.For(len(xs), 0, func(i int) {
		if xs[i] > 0 {
			mu.Lock()
			n++
			mu.Unlock()
		}
	})
	return n
}

// StructRace writes a field of captured shared state.
type stats struct{ attempts int64 }

func StructRace(xs []int, s *stats) {
	parallel.For(len(xs), 0, func(i int) {
		s.attempts = int64(i) // want `writes captured variable s`
	})
}

// AliasRace smuggles a pointer to captured state into the body.
func AliasRace(xs []int64) {
	var t int64
	parallel.ForRange(len(xs), 0, func(lo, hi int) {
		p := &t // want `takes the address of captured variable t`
		_ = p
	})
}

// AliasAtomic feeds the address straight to an atomic: sanctioned.
func AliasAtomic(xs []int64) int64 {
	var t int64
	parallel.ForRange(len(xs), 0, func(lo, hi int) {
		atomic.AddInt64(&t, int64(hi-lo))
	})
	return t
}

// WriteMinOK feeds a captured element address to the parallel package's
// own atomic helper.
func WriteMinOK(vals []int32) {
	parallel.For(len(vals), 0, func(i int) {
		parallel.WriteMin32(&vals[0], vals[i]) // indexed: fine
	})
}

// ReduceLeafRace writes captured state from the concurrent leaf.
func ReduceLeafRace(xs []int64) int64 {
	var seen int64
	return parallel.Reduce(len(xs), 0, int64(0), func(lo, hi int) int64 {
		seen++ // want `increments captured variable seen`
		var s int64
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		return s
	}, func(a, b int64) int64 { return a + b })
}

// ReduceCombineOK: combine runs sequentially after the join, so a
// captured write there is not a race.
func ReduceCombineOK(xs []int64) int64 {
	combines := 0
	r := parallel.Reduce(len(xs), 0, int64(0), func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		return s
	}, func(a, b int64) int64 {
		combines++
		return a + b
	})
	_ = combines
	return r
}

// DoDisjoint writes one result variable per thunk: the fork-join
// result-passing idiom.
func DoDisjoint(a, b []int64) (int64, int64) {
	var sa, sb int64
	parallel.Do(
		func() { sa = seqSum(a) },
		func() { sb = seqSum(b) },
	)
	return sa, sb
}

// DoRace writes the same variable from two thunks.
func DoRace(a, b []int64) int64 {
	var s int64
	parallel.Do(
		func() { s = seqSum(a) },
		func() { s += seqSum(b) }, // want `written by 2 thunks`
	)
	return s
}

func seqSum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
