// Package trace is a nilguard fixture: exported pointer-receiver
// methods must begin with a nil-receiver guard, and nothing blocking or
// allocating may run while the recorder mutex is held.
package trace

import (
	"fmt"
	"sync"
)

// Recorder is a nil-is-disabled flight recorder stand-in.
type Recorder struct {
	mu  sync.Mutex
	buf []int
	n   int
}

// Enabled guards via a first-statement return expression.
func (r *Recorder) Enabled() bool { return r != nil }

// Push guards with the canonical first-statement if.
func (r *Recorder) Push(v int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf = append(r.buf, v)
	r.mu.Unlock()
}

// Unguarded forgets the guard entirely.
func (r *Recorder) Unguarded(v int) { // want `nil-receiver guard`
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, v)
}

// LateGuard guards too late: the first statement already dereferences.
func (r *Recorder) LateGuard() int { // want `nil-receiver guard`
	n := r.n
	if r == nil {
		return 0
	}
	return n
}

// CompoundGuard guards inside a compound condition: accepted.
func (r *Recorder) CompoundGuard() int {
	if r == nil || r.n == 0 {
		return 0
	}
	return r.n
}

// Dump formats while holding the mutex.
func (r *Recorder) Dump() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("%v", r.buf) // want `holding the recorder mutex`
}

// DumpAfter formats after releasing: fine.
func (r *Recorder) DumpAfter() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	cp := make([]int, len(r.buf))
	copy(cp, r.buf)
	r.mu.Unlock()
	return fmt.Sprint(cp)
}

// Notify sends on a channel under the lock.
func (r *Recorder) Notify(ch chan int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ch <- r.n // want `channel send`
}

// Append is the hot path: allocation under the lock is flagged there.
func (r *Recorder) Append(v int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.buf == nil {
		r.buf = make([]int, 0, 8) // want `hot Append path`
	}
	r.buf = append(r.buf, v)
	r.mu.Unlock()
}

// Broadcaster is a streaming fan-out stand-in: Publish and offer ride
// the same observer hot path as Append, so the allocation ban covers
// them too.
type Broadcaster struct {
	mu   sync.Mutex
	subs []*Sub
	log  []int
}

// Sub is a subscription stand-in.
type Sub struct {
	mu   sync.Mutex
	ring []int
	n    int
}

// Publish is hot: composite literals under its lock are flagged.
func (b *Broadcaster) Publish(v int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.log = append(b.log, []int{v}...) // want `hot Publish path`
	b.mu.Unlock()
}

// offer is hot despite being unexported: Publish calls it per
// subscriber, and growing the ring under the lock is flagged.
func (s *Sub) offer(v int) bool {
	s.mu.Lock()
	if s.n == len(s.ring) {
		s.ring = make([]int, s.n+1) // want `hot offer path`
	}
	s.ring[s.n] = v
	s.n++
	s.mu.Unlock()
	return true
}

// Collect is not a hot path: allocation under the lock is allowed
// there (only blocking operations are not).
func (b *Broadcaster) Collect() []int {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	out := make([]int, len(b.log))
	copy(out, b.log)
	b.mu.Unlock()
	return out
}

// value-receiver and unexported methods are out of scope.
type view struct{ n int }

// Len has a value receiver: a nil pointer cannot reach it.
func (v view) Len() int { return v.n }

func (r *Recorder) internal() int { return r.n }
