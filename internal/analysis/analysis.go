// Package analysis is the repo's static-analysis suite: a small,
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// driver shape (Analyzer / Pass / Diagnostic) plus the five greedylint
// analyzers that mechanically enforce the determinism and concurrency
// invariants the rest of the tree proves by hand — the properties that
// make a (graph, problem, seed, prefix) dedup key sound: byte-identical
// payloads on any machine at any GOMAXPROCS.
//
// The framework is deliberately self-contained: the container this repo
// builds in has no module cache, so golang.org/x/tools is unavailable.
// Imports are resolved from compiler export data produced by
// `go list -deps -export`, and analyzed packages are parsed and
// type-checked from source — the same information a real go/analysis
// driver would hand its passes.
//
// Suppression: a finding is silenced by the directive
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line, on the line directly above it, or in
// the doc comment of the enclosing function declaration (which extends
// the allowance to the whole function — the escape hatch for annotated
// init/Reset-style functions that legitimately touch atomic fields with
// plain loads). A directive without a reason string, or naming an
// unknown analyzer, is itself reported and cannot be suppressed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a name, a documentation string,
// an optional package scope, and the function that runs it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Scope, when non-nil, restricts the analyzer to packages for which
	// it returns true (by import path). A nil Scope means every package.
	Scope func(pkgPath string) bool
	// Run performs the analysis on one package, reporting findings
	// through the pass.
	Run func(pass *Pass)
}

// A Pass provides one analyzer run with everything it needs to analyze
// a single package, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the greedylint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Nodeterminism,
		Atomicmix,
		Ctxround,
		Nilguard,
		Forrangealias,
	}
}

// allowRe matches a //lint:allow directive. The reason is everything
// after the analyzer name; it is required, but the regexp accepts its
// absence so the audit can report it instead of silently ignoring the
// directive.
var allowRe = regexp.MustCompile(`^//lint:allow\s+(\S+)(?:\s+(.*\S))?\s*$`)

// allowSpan is one directive's effect: findings of Analyzer on lines
// [FromLine, ToLine] of File are suppressed.
type allowSpan struct {
	File     string
	Analyzer string
	FromLine int
	ToLine   int
}

// directive is one parsed //lint:allow comment, before scoping.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
}

// collectAllows parses every //lint:allow directive in the files and
// returns the suppression spans plus audit diagnostics for malformed
// directives (missing reason, unknown analyzer). known is the set of
// valid analyzer names.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]allowSpan, []Diagnostic) {
	var spans []allowSpan
	var audit []Diagnostic
	for _, f := range files {
		// Map from directive line to the directive, so function-doc
		// directives can be widened to the whole declaration below.
		byLine := map[int]directive{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				d := directive{pos: pos, analyzer: m[1], reason: m[2]}
				if d.reason == "" {
					audit = append(audit, Diagnostic{
						Analyzer: "allowaudit",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:allow %s has no reason string (write //lint:allow %s <why this site is exempt>)", d.analyzer, d.analyzer),
					})
					continue
				}
				if !known[d.analyzer] {
					audit = append(audit, Diagnostic{
						Analyzer: "allowaudit",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", d.analyzer),
					})
					continue
				}
				byLine[pos.Line] = d
				// Line-scoped effect: the directive's own line (trailing
				// comments) and the line below (standalone comments).
				spans = append(spans, allowSpan{
					File:     pos.Filename,
					Analyzer: d.analyzer,
					FromLine: pos.Line,
					ToLine:   pos.Line + 1,
				})
			}
		}
		// Function-scoped effect: a directive inside a FuncDecl's doc
		// comment covers the whole declaration.
		if len(byLine) == 0 {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			from := fset.Position(fd.Doc.Pos()).Line
			to := fset.Position(fd.End()).Line
			for line, d := range byLine {
				if line >= from && line <= fset.Position(fd.Doc.End()).Line {
					spans = append(spans, allowSpan{
						File:     d.pos.Filename,
						Analyzer: d.analyzer,
						FromLine: from,
						ToLine:   to,
					})
				}
			}
		}
	}
	return spans, audit
}

// suppressed reports whether d is covered by one of the spans.
func suppressed(d Diagnostic, spans []allowSpan) bool {
	for _, s := range spans {
		if s.Analyzer == d.Analyzer && s.File == d.Pos.Filename &&
			d.Pos.Line >= s.FromLine && d.Pos.Line <= s.ToLine {
			return true
		}
	}
	return false
}

// RunAnalyzers runs the given analyzers over the loaded packages,
// applying //lint:allow suppression and auditing the directives
// themselves. Diagnostics come back sorted by file, line, analyzer.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		spans, audit := collectAllows(pkg.Fset, pkg.Files, known)
		out = append(out, audit...)
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				if !suppressed(d, spans) {
					out = append(out, d)
				}
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// lastSegment returns the final path element of an import path.
func lastSegment(pkgPath string) string {
	if i := strings.LastIndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[i+1:]
	}
	return pkgPath
}

// scopeByBase returns a Scope matching packages whose final import-path
// element is one of names. Matching on the final element (rather than
// the full repro/internal/... path) lets the analysistest fixtures
// under testdata/src/<analyzer>/<name> exercise the same scoping the
// real tree gets.
func scopeByBase(names ...string) func(string) bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return func(pkgPath string) bool { return set[lastSegment(pkgPath)] }
}

// calleeFunc resolves the called function or method of a call
// expression, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is one of the named functions of the
// package with import path pkgPath.
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// walk visits the AST rooted at n, calling visit with each node and its
// ancestor stack (nearest last). Returning false prunes the subtree.
func walk(n ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := visit(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}
