package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicmix catches torn-access races on struct fields: once any site
// in a package accesses a field through sync/atomic (a pointer-based
// atomic.LoadInt32(&s.f) / atomic.AddInt64(&s.f, ...) call), every
// other access to that field must be atomic too — a plain load can
// observe a torn or stale value, and a plain store can be lost, and the
// race detector only catches the interleavings that actually happen in
// a given run. Fields of the typed atomic kinds (atomic.Int64,
// atomic.Uint32, ...) are checked for the analogous mistake: copying
// the value out with a plain read of the field instead of calling its
// methods.
//
// Initialization and reset paths that run strictly before the field is
// shared (constructors, Workspace.Reset) may use plain stores — those
// functions carry //lint:allow atomicmix <reason> in their doc comment,
// which exempts the whole function.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "forbid mixing sync/atomic and plain access to the same struct field",
	Run:  runAtomicmix,
}

// typedAtomicNames are the sync/atomic value types whose fields must
// only be touched through their methods.
var typedAtomicNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Pointer": true,
	"Uint32": true, "Uint64": true, "Uintptr": true, "Value": true,
}

func runAtomicmix(pass *Pass) {
	info := pass.TypesInfo

	// fieldOf resolves a selector expression to the struct field it
	// names, or nil.
	fieldOf := func(sel *ast.SelectorExpr) *types.Var {
		v, ok := info.Uses[sel.Sel].(*types.Var)
		if ok && v.IsField() {
			return v
		}
		return nil
	}

	// Pass A: find every field reached through a pointer-based
	// sync/atomic call, and remember those selector nodes so pass B can
	// skip them.
	atomicFields := map[*types.Var]bool{}
	atomicUses := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldOf(sel); fld != nil {
					atomicFields[fld] = true
					atomicUses[sel] = true
				}
			}
			return true
		})
	}

	// isTypedAtomicField reports whether fld's type is one of the
	// sync/atomic value types.
	isTypedAtomicField := func(fld *types.Var) bool {
		named, ok := fld.Type().(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && typedAtomicNames[obj.Name()]
	}

	// Pass B: every remaining access to an atomic field is a finding.
	for _, f := range pass.Files {
		walk(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldOf(sel)
			if fld == nil {
				return true
			}
			if atomicFields[fld] && !atomicUses[sel] {
				pass.Reportf(sel.Pos(), "plain %s of field %s, which is accessed with sync/atomic elsewhere in this package: mixed access tears — use the atomic op, or annotate the enclosing pre-publication init/Reset with //lint:allow atomicmix <reason>", accessKind(sel, stack), fld.Name())
				return true
			}
			if isTypedAtomicField(fld) && !usedAsMethodReceiver(sel, stack) {
				pass.Reportf(sel.Pos(), "field %s has type sync/atomic.%s but is used as a plain value here: call its methods (Load/Store/Add/...) instead of copying or assigning it", fld.Name(), fld.Type().(*types.Named).Obj().Name())
			}
			return true
		})
	}
}

// accessKind classifies a selector access as read or write from its
// immediate context.
func accessKind(sel *ast.SelectorExpr, stack []ast.Node) string {
	if len(stack) == 0 {
		return "read"
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if ast.Unparen(lhs) == sel {
				return "write"
			}
		}
	case *ast.IncDecStmt:
		if ast.Unparen(parent.X) == sel {
			return "write"
		}
	case *ast.UnaryExpr:
		if parent.Op == token.AND {
			return "address-of"
		}
	}
	return "read"
}

// usedAsMethodReceiver reports whether sel is immediately the receiver
// of a method selection (x.field.Load()) or has its address taken for
// one (&x.field used as a receiver happens implicitly, so a bare & is
// accepted too — taking the address is not a data access).
func usedAsMethodReceiver(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		return parent.X == sel
	case *ast.UnaryExpr:
		return parent.Op == token.AND
	}
	return false
}
