package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// The per-analyzer fixture tests: each runs one analyzer over its
// testdata tree and checks findings against the `// want` comments —
// positives must fire, negatives must stay silent, and the //lint:allow
// escape hatch must suppress (the fixtures contain annotated sites with
// no want).

func TestNodeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/src/nodeterminism", analysis.Nodeterminism)
}

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata/src/atomicmix", analysis.Atomicmix)
}

func TestCtxround(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctxround", analysis.Ctxround)
}

func TestNilguard(t *testing.T) {
	analysistest.Run(t, "testdata/src/nilguard", analysis.Nilguard)
}

func TestForrangealias(t *testing.T) {
	analysistest.Run(t, "testdata/src/forrangealias", analysis.Forrangealias)
}

// TestAnalyzersFire is the seeded-violation self-test: every analyzer
// must produce at least one finding on its seeded fixture. A broken
// analyzer (one that silently stops matching anything) cannot pass —
// even if its fixture's want comments were accidentally emptied, this
// count check still fails.
func TestAnalyzersFire(t *testing.T) {
	fixtures := map[string]string{
		"nodeterminism": "testdata/src/nodeterminism",
		"atomicmix":     "testdata/src/atomicmix",
		"ctxround":      "testdata/src/ctxround",
		"nilguard":      "testdata/src/nilguard",
		"forrangealias": "testdata/src/forrangealias",
	}
	all := analysis.All()
	if len(all) != len(fixtures) {
		t.Fatalf("suite has %d analyzers but %d seeded fixtures: add a fixture for every analyzer", len(all), len(fixtures))
	}
	for _, a := range all {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dir, ok := fixtures[a.Name]
			if !ok {
				t.Fatalf("no seeded fixture for analyzer %q", a.Name)
			}
			diags := analysistest.Run(t, dir, a)
			fired := 0
			for _, d := range diags {
				if d.Analyzer == a.Name {
					fired++
				}
			}
			if fired == 0 {
				t.Fatalf("analyzer %q produced no findings on its seeded-violation fixture: the analyzer is broken, not the tree clean", a.Name)
			}
		})
	}
}

// TestAllowAudit checks the directive audit: a reasonless //lint:allow
// and one naming an unknown analyzer are both reported, as
// unsuppressible allowaudit findings.
func TestAllowAudit(t *testing.T) {
	pkgs, err := analysis.Load(".", "./testdata/src/allowaudit/pkg")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.RunAnalyzers(pkgs, analysis.All())
	var reasonless, unknown bool
	for _, d := range diags {
		if d.Analyzer != "allowaudit" {
			t.Errorf("unexpected non-audit finding: %s", d)
			continue
		}
		switch {
		case strings.Contains(d.Message, "no reason string"):
			reasonless = true
		case strings.Contains(d.Message, "unknown analyzer"):
			unknown = true
		default:
			t.Errorf("unexpected audit finding: %s", d)
		}
	}
	if !reasonless {
		t.Error("reasonless //lint:allow was not reported")
	}
	if !unknown {
		t.Error("unknown-analyzer //lint:allow was not reported")
	}
}

// TestSuiteNames pins the analyzer names: they are the vocabulary of
// //lint:allow directives across the tree, so a rename is a breaking
// change to every annotation.
func TestSuiteNames(t *testing.T) {
	want := []string{"nodeterminism", "atomicmix", "ctxround", "nilguard", "forrangealias"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}
