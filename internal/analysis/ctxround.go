package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxround enforces the "cancellation lands within one round" contract:
// in the algorithm packages, any function that accepts a
// context.Context and contains a loop must consult the context inside
// at least one loop body — a ctx.Err() / ctx.Done() check, or passing
// the context to a callee that is invoked every iteration. A round loop
// that takes a context but never looks at it inside the loop can only
// observe cancellation before the loop starts, which silently regresses
// the bounded-cancellation guarantee the service layer's DELETE
// /v1/jobs handler relies on (a cancelled running job must stop within
// one round of its algorithm).
//
// Loops inside function literals are not counted as the function's own
// loops: the literals passed to parallel.ForRange are the intra-round
// work, and the contract is per-round, not per-item (hot inner loops
// deliberately never see the context).
var Ctxround = &Analyzer{
	Name:  "ctxround",
	Doc:   "context-taking round loops must reach a cancellation check inside the loop body",
	Scope: scopeByBase("core", "matching", "spanning", "dynamic"),
	Run:   runCtxround,
}

func runCtxround(pass *Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParams := contextParams(info, fd)
			if len(ctxParams) == 0 {
				continue
			}
			loops := topLevelLoops(fd.Body)
			if len(loops) == 0 {
				continue
			}
			checked := false
			for _, loop := range loops {
				if usesAny(info, loopBody(loop), ctxParams) {
					checked = true
					break
				}
			}
			if !checked {
				pass.Reportf(fd.Name.Pos(), "%s takes a context.Context and loops, but no loop body consults the context: cancellation cannot land within one round — check ctx.Err() (or pass ctx to a per-iteration callee) inside the loop", fd.Name.Name)
			}
		}
	}
}

// contextParams returns the objects of fd's parameters whose type is
// context.Context.
func contextParams(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			tn := named.Obj()
			if tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "Context" {
				out = append(out, obj)
			}
		}
	}
	return out
}

// topLevelLoops collects the for/range statements of body that are not
// nested inside a function literal.
func topLevelLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	walk(body, func(n ast.Node, _ []ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
		}
		return true
	})
	return loops
}

func loopBody(loop ast.Stmt) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// usesAny reports whether any identifier under n resolves to one of the
// given objects.
func usesAny(info *types.Info, n ast.Node, objs []types.Object) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		use := info.Uses[id]
		for _, obj := range objs {
			if use == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
