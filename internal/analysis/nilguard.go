package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Nilguard pins the two properties that make the flight recorder's
// dark path free (PR 6: Append 31ns/0 allocs, nil recorder 0.34ns):
//
//  1. Nil-is-disabled: every exported pointer-receiver method of a type
//     in a package named "trace" must begin with a nil-receiver guard
//     (`if r == nil { ... }` as the first statement, or a first-statement
//     return whose expression tests the receiver against nil). Call
//     sites thread *trace.Recorder unconditionally — a single unguarded
//     method turns "tracing disabled" into a panic.
//
//  2. Short critical section: while the recorder mutex is held, no
//     formatting, I/O, logging, channel operation, or sleep may run —
//     Append sits on the solver's round observer path, and anything
//     blocking under that mutex stalls every concurrent worker. In the
//     hot paths (Append, and the streaming fan-out's Publish/offer,
//     which Append calls on the same observer path), allocation
//     (make/new/composite literals) is forbidden under the lock too;
//     rings are sized once at construction.
var Nilguard = &Analyzer{
	Name:  "nilguard",
	Doc:   "nil-is-disabled recorder methods must guard the receiver; no blocking or allocation under the recorder mutex",
	Scope: scopeByBase("trace"),
	Run:   runNilguard,
}

// nilguardHotPaths are the functions on the solver's per-round observer
// path: Append (the recorder write) plus the streaming fan-out it tees
// into. Allocation under any mu-named lock inside them breaks the
// 0-alloc contract the benchmarks pin.
var nilguardHotPaths = map[string]bool{
	"Append":  true,
	"Publish": true,
	"offer":   true,
}

// blockingPkgs are packages whose calls must not happen while the
// recorder mutex is held.
var blockingPkgs = map[string]bool{
	"fmt": true, "io": true, "os": true, "net": true,
	"log": true, "log/slog": true, "net/http": true,
}

func runNilguard(pass *Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				checkNilGuard(pass, fd)
			}
			checkMutexSection(pass, info, fd)
		}
	}
}

// checkNilGuard verifies that an exported pointer-receiver method's
// first statement tests the receiver against nil.
func checkNilGuard(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	recv := fd.Recv.List[0]
	if _, ok := recv.Type.(*ast.StarExpr); !ok {
		return // value receiver: a nil pointer cannot reach it
	}
	if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
		pass.Reportf(fd.Name.Pos(), "method %s on a nil-is-disabled type discards its receiver: name it and guard `if recv == nil` first", fd.Name.Name)
		return
	}
	recvObj := pass.TypesInfo.Defs[recv.Names[0]]
	if len(fd.Body.List) == 0 {
		pass.Reportf(fd.Name.Pos(), "method %s on a nil-is-disabled type has no nil-receiver guard", fd.Name.Name)
		return
	}
	first := fd.Body.List[0]
	ok := false
	switch s := first.(type) {
	case *ast.IfStmt:
		ok = mentionsNilTest(pass, s.Cond, recvObj)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if mentionsNilTest(pass, r, recvObj) {
				ok = true
			}
		}
	}
	if !ok {
		pass.Reportf(fd.Name.Pos(), "method %s on a nil-is-disabled type must begin with a nil-receiver guard (`if %s == nil { return ... }`): call sites thread a nil receiver as the disabled path", fd.Name.Name, recv.Names[0].Name)
	}
}

// mentionsNilTest reports whether expr contains a comparison of the
// receiver object against nil (== or !=).
func mentionsNilTest(pass *Pass, expr ast.Expr, recvObj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if (isObjIdent(pass, x, recvObj) && isNilIdent(y)) ||
			(isObjIdent(pass, y, recvObj) && isNilIdent(x)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isObjIdent(pass *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && obj != nil && pass.TypesInfo.Uses[id] == obj
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkMutexSection walks fd's top-level statement list tracking
// whether the recorder mutex is held (a `x.mu.Lock()` call locks; a
// non-deferred `x.mu.Unlock()` unlocks; a deferred unlock leaves the
// lock held to the end) and reports blocking operations inside the
// locked region. Nested blocks inherit the lock state; this matches the
// flat lock/unlock shapes of the flight recorder and keeps the check
// simple enough to trust.
func checkMutexSection(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	hot := ""
	if nilguardHotPaths[fd.Name.Name] {
		hot = fd.Name.Name
	}
	var scan func(stmts []ast.Stmt, locked bool) bool
	scan = func(stmts []ast.Stmt, locked bool) bool {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ast.ExprStmt:
				if isMutexCall(st.X, "Lock") {
					locked = true
					continue
				}
				if isMutexCall(st.X, "Unlock") {
					locked = false
					continue
				}
			case *ast.DeferStmt:
				// defer mu.Unlock(): the lock stays held for the rest of
				// the function; keep scanning in the locked state.
				continue
			}
			if locked {
				// The whole statement subtree runs under the lock; one
				// inspection covers it, nested blocks included.
				reportBlockingOps(pass, info, s, hot)
				continue
			}
			// Unlocked: recurse into compound statements so a Lock taken
			// inside them is still tracked.
			switch st := s.(type) {
			case *ast.IfStmt:
				locked = scan(st.Body.List, locked)
				if st.Else != nil {
					if blk, ok := st.Else.(*ast.BlockStmt); ok {
						locked = scan(blk.List, locked)
					}
				}
			case *ast.ForStmt:
				locked = scan(st.Body.List, locked)
			case *ast.RangeStmt:
				locked = scan(st.Body.List, locked)
			case *ast.BlockStmt:
				locked = scan(st.List, locked)
			}
		}
		return locked
	}
	scan(fd.Body.List, false)
}

// isMutexCall reports whether e is a call of the named method on a
// field or variable whose name suggests a mutex ("mu" / "...Mu" /
// "...Mutex").
func isMutexCall(e ast.Expr, method string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		id, ok := sel.X.(*ast.Ident)
		return ok && isMutexName(id.Name)
	}
	return isMutexName(inner.Sel.Name)
}

func isMutexName(name string) bool {
	return name == "mu" || strings.HasSuffix(name, "Mu") || strings.HasSuffix(name, "Mutex")
}

// reportBlockingOps flags formatting/I-O/logging calls, channel
// operations, selects, and sleeps under the recorder mutex; in hot
// methods (hot is the function name, "" otherwise) it also flags
// allocation.
func reportBlockingOps(pass *Pass, info *types.Info, s ast.Stmt, hot string) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn != nil && fn.Pkg() != nil && blockingPkgs[fn.Pkg().Path()] {
				pass.Reportf(n.Pos(), "call to %s.%s while holding the recorder mutex: formatting/I-O under this lock stalls every concurrent observer", fn.Pkg().Name(), fn.Name())
			}
			if isPkgFunc(fn, "time", "Sleep") {
				pass.Reportf(n.Pos(), "time.Sleep while holding the recorder mutex")
			}
			if hot != "" {
				if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						pass.Reportf(n.Pos(), "%s under the recorder mutex in the hot %s path: rings are sized once at construction — this path is pinned at 0 allocs", id.Name, hot)
					}
				}
			}
		case *ast.CompositeLit:
			if hot != "" {
				pass.Reportf(n.Pos(), "composite literal allocation under the recorder mutex in the hot %s path", hot)
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while holding the recorder mutex: a full channel blocks every concurrent observer")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while holding the recorder mutex")
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select while holding the recorder mutex")
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch while holding the recorder mutex")
		}
		return true
	})
}
