// Package analysistest runs an analyzer over fixture packages and
// compares its findings against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the repo's
// stdlib-only driver.
//
// Fixture layout: internal/analysis/testdata/src/<analyzer>/<pkg>/...
// Each fixture file marks expected findings with a trailing comment on
// the offending line:
//
//	bad := time.Now() // want `time\.Now`
//
// The backquoted text is a regular expression matched against the
// diagnostic message. Every diagnostic must be matched by a want and
// every want must be matched by a diagnostic, on the exact line.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Run loads every package directory under root (recursively; any
// directory containing .go files), runs the analyzer, and checks the
// findings against the fixtures' want comments.
func Run(t *testing.T, root string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	dirs := fixtureDirs(t, root)
	if len(dirs) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}
	// go list wildcard patterns never match testdata directories, so
	// each fixture package is named explicitly.
	pkgs, err := analysis.Load(".", dirs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	fset := token.NewFileSet()
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range ents {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, ent.Name())
			af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, cg := range af.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", path, m[1], err)
						}
						pos := fset.Position(c.Pos())
						key := posKey(pos.Filename, pos.Line)
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		key := posKey(d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", key, w.re)
			}
		}
	}
	return diags
}

// fixtureDirs returns every directory under root containing .go files,
// as ./-prefixed relative paths suitable for go list.
func fixtureDirs(t *testing.T, root string) []string {
	t.Helper()
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, "./"+filepath.ToSlash(path))
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

func posKey(file string, line int) string {
	// Fixture files are compared by absolute path as the loader reports
	// them; normalize to absolute so want positions match.
	abs, err := filepath.Abs(file)
	if err != nil {
		abs = file
	}
	return fmt.Sprintf("%s:%d", abs, line)
}
