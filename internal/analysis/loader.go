package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package: what a Pass sees.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load loads and type-checks the packages matching patterns, resolving
// their imports (standard library and module alike) from compiler
// export data produced by `go list -deps -export`. dir is the working
// directory the patterns are relative to (usually the module root).
//
// The loader analyzes only the pattern-matched packages themselves;
// dependencies contribute export data, never source, so each analyzed
// package type-checks independently and no topological ordering is
// needed. Test files are not loaded: the invariants greedylint enforces
// bind the shipped algorithm and serving code, and test-only
// nondeterminism (timeouts, temp dirs) is legitimate.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var roots []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", derr)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range roots {
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			af, perr := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if perr != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %v", name, perr)
			}
			files = append(files, af)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, terr := conf.Check(p.ImportPath, fset, files, info)
		if terr != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", p.ImportPath, terr)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
