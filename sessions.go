package greedy

import (
	"context"
	"fmt"

	"repro/internal/dynamic"
)

// Dynamic-graph sessions: incremental maintenance of MIS and MM under
// edge churn. A session wraps an internal/dynamic.Maintainer: it owns
// a mutable overlay over the (immutable) input graph and, on every
// Apply, drains a change-driven priority frontier — seeded only by the
// directly-perturbed items, expanding to an item's later neighbors
// only when the item's membership actually flipped — instead of
// recomputing, with results bit-identical to a from-scratch run on the
// mutated graph. See Solver.MISDynamic and Solver.MMDynamic.

// Re-exported dynamic types, so session callers need not import
// internal packages.
type (
	// DynamicUpdate is one edge insertion or deletion.
	DynamicUpdate = dynamic.Update
	// DynamicOp is the kind of a DynamicUpdate.
	DynamicOp = dynamic.Op
	// RepairStats reports the per-batch repair work of a session Apply
	// in frontier terms: Seeds (directly-perturbed items enqueued),
	// Visited (distinct items re-decided), Flipped (membership flips
	// propagated), FrontierPeak (pending-frontier high-water mark),
	// Changed (net memberships changed), plus the decide-loop
	// Rounds/Attempts/Inspections counters. Visited == Changed-ish
	// small is the paper's locality claim at work; Visited >> Changed
	// would mean repair is re-deriving unchanged decisions.
	RepairStats = dynamic.RepairStats
	// RepairCost is the per-problem component of RepairStats.
	RepairCost = dynamic.RepairCost
)

// DynamicUpdate operations.
const (
	// OpAdd inserts an edge that must not be present.
	OpAdd = dynamic.OpAdd
	// OpDel deletes an edge that must be present.
	OpDel = dynamic.OpDel
)

// MISSession maintains a maximal independent set under edge churn.
// Obtain one from Solver.MISDynamic; it is not safe for concurrent
// use.
type MISSession struct {
	mt *dynamic.Maintainer
}

// MISDynamic computes the MIS of g and returns a session that
// maintains it under edge updates. The priority order is the same one
// Solver.MIS uses for the configured seed (or WithOrder), so the
// session's result always equals what a from-scratch MIS run on the
// current graph would return. The initial computation honors ctx;
// AlgoLuby has no maintainable order and is reported as
// ErrDynamicUnsupported.
func (s *Solver) MISDynamic(ctx context.Context, g *Graph, opts ...Option) (*MISSession, error) {
	c := s.config(opts)
	if c.algorithm == AlgoLuby {
		return nil, fmt.Errorf("%w: got %q", ErrDynamicUnsupported, c.algorithm)
	}
	var ord *Order
	if c.order != nil {
		if c.order.Len() != g.NumVertices() {
			return nil, fmt.Errorf("%w: order has %d items, input has %d", ErrOrderSize, c.order.Len(), g.NumVertices())
		}
		ord = c.order
	}
	mt, err := dynamic.NewMaintainer(ctx, g, dynamic.Config{
		MIS:   true,
		Seed:  c.seed,
		Order: ord,
		Grain: c.grain,
	})
	if err != nil {
		return nil, err
	}
	return &MISSession{mt: mt}, nil
}

// Apply atomically applies a batch of edge updates and repairs the
// maintained set by draining the change-driven priority frontier. An
// invalid batch (dynamic.ErrBadUpdate) changes nothing.
func (s *MISSession) Apply(ctx context.Context, batch []DynamicUpdate) (RepairStats, error) {
	return s.mt.Apply(ctx, batch)
}

// Result returns a snapshot of the current MIS (Stats zero — per-batch
// costs are reported by Apply).
func (s *MISSession) Result() *MISResult { return s.mt.MISResult() }

// Graph returns the current graph as an immutable CSR.
func (s *MISSession) Graph() *Graph { return s.mt.Graph() }

// NumVertices returns the (fixed) vertex count.
func (s *MISSession) NumVertices() int { return s.mt.NumVertices() }

// NumEdges returns the current edge count.
func (s *MISSession) NumEdges() int { return s.mt.NumEdges() }

// InitStats returns the cost counters of the initial computation.
func (s *MISSession) InitStats() Stats {
	mis, _ := s.mt.InitStats()
	return mis
}

// MMSession maintains a maximal matching under edge churn. Obtain one
// from Solver.MMDynamic; it is not safe for concurrent use.
type MMSession struct {
	mt *dynamic.Maintainer
}

// MMDynamic computes the maximal matching of g under churn-stable
// (hash-derived, WithDynamic-style) edge priorities and returns a
// session that maintains it under edge updates. The maintained
// matching always equals Solver.MM(ctx, g.EdgeList(), WithDynamic(),
// WithSeed(seed)) on the current graph. Explicit orders and AlgoLuby
// are reported as ErrDynamicUnsupported.
func (s *Solver) MMDynamic(ctx context.Context, g *Graph, opts ...Option) (*MMSession, error) {
	c := s.config(opts)
	if c.algorithm == AlgoLuby {
		return nil, ErrLubyMatching
	}
	if c.order != nil {
		return nil, fmt.Errorf("%w: WithOrder cannot combine with dynamic matching", ErrDynamicUnsupported)
	}
	mt, err := dynamic.NewMaintainer(ctx, g, dynamic.Config{
		MM:    true,
		Seed:  c.seed,
		Grain: c.grain,
	})
	if err != nil {
		return nil, err
	}
	return &MMSession{mt: mt}, nil
}

// Apply atomically applies a batch of edge updates and repairs the
// maintained matching.
func (s *MMSession) Apply(ctx context.Context, batch []DynamicUpdate) (RepairStats, error) {
	return s.mt.Apply(ctx, batch)
}

// Pairs returns the current matching as canonical edges sorted
// lexicographically.
func (s *MMSession) Pairs() []Edge { return s.mt.MatchingPairs() }

// Mate returns a copy of the mate array (mate[v] = matched partner of
// v, or -1).
func (s *MMSession) Mate() []int32 { return s.mt.Mate() }

// Size returns the number of matched edges.
func (s *MMSession) Size() int { return len(s.mt.MatchingPairs()) }

// Graph returns the current graph as an immutable CSR.
func (s *MMSession) Graph() *Graph { return s.mt.Graph() }

// NumVertices returns the (fixed) vertex count.
func (s *MMSession) NumVertices() int { return s.mt.NumVertices() }

// NumEdges returns the current edge count.
func (s *MMSession) NumEdges() int { return s.mt.NumEdges() }

// InitStats returns the cost counters of the initial computation.
func (s *MMSession) InitStats() Stats {
	_, mm := s.mt.InitStats()
	return mm
}

// DynamicEdgeOrder exposes the churn-stable edge order WithDynamic
// selects for an explicit edge list — the order a from-scratch
// verification of a dynamic matching session must use.
func DynamicEdgeOrder(el EdgeList, seed uint64) Order {
	return dynamic.EdgeOrder(el, seed)
}
