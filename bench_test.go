// Benchmarks reproducing every figure of Blelloch, Fineman and Shun
// (SPAA 2012). Each BenchmarkFigXY corresponds to one panel; DESIGN.md
// section 4 is the index. Inputs are scaled to 1/100 of the paper's so
// the full suite runs on a small container; cmd/bench runs the same
// experiments at configurable scale and EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Machine-independent quantities (work/N, rounds/N) are attached to the
// timing benchmarks via b.ReportMetric, so `go test -bench=.` regenerates
// both the time series and the counter series of each figure.
package greedy_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	greedy "repro"
	"repro/internal/core"
	"repro/internal/matching"
	"repro/internal/spanning"
)

// Benchmark workloads: the paper's two inputs at 1/100 scale, preserving
// the m/n ratios (random: n=10^5, m=5x10^5; rMat: n=2^17, m=5x10^5).
const (
	benchSeed    = 42
	benchRandN   = 100_000
	benchRandM   = 500_000
	benchRMatLog = 17
	benchRMatM   = 500_000
)

var (
	graphOnce  sync.Once
	benchRand  *greedy.Graph
	benchRMat  *greedy.Graph
	ordRandV   greedy.Order
	ordRMatV   greedy.Order
	elRand     greedy.EdgeList
	elRMat     greedy.EdgeList
	ordRandE   greedy.Order
	ordRMatE   greedy.Order
	sweepFracs = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0}
)

func benchSetup() {
	graphOnce.Do(func() {
		benchRand = greedy.RandomGraph(benchRandN, benchRandM, benchSeed)
		benchRMat = greedy.RMatGraph(benchRMatLog, benchRMatM, benchSeed)
		ordRandV = greedy.NewRandomOrder(benchRand.NumVertices(), benchSeed+1)
		ordRMatV = greedy.NewRandomOrder(benchRMat.NumVertices(), benchSeed+1)
		elRand = benchRand.EdgeList()
		elRMat = benchRMat.EdgeList()
		ordRandE = greedy.NewRandomOrder(elRand.NumEdges(), benchSeed+2)
		ordRMatE = greedy.NewRandomOrder(elRMat.NumEdges(), benchSeed+2)
	})
}

// misPrefixPanel benches PrefixMIS across the sweep fractions on one
// graph, reporting the figure's three series (time via ns/op, work/N and
// rounds/N via metrics).
func misPrefixPanel(b *testing.B, g *greedy.Graph, ord greedy.Order) {
	n := g.NumVertices()
	for _, frac := range sweepFracs {
		b.Run(fmt.Sprintf("prefix=%g", frac), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.PrefixMIS(g, ord, core.Options{PrefixFrac: frac})
			}
			b.ReportMetric(float64(res.Stats.Attempts)/float64(n), "work/N")
			b.ReportMetric(float64(res.Stats.Rounds)/float64(n), "rounds/N")
		})
	}
}

func mmPrefixPanel(b *testing.B, el greedy.EdgeList, ord greedy.Order) {
	m := el.NumEdges()
	for _, frac := range sweepFracs {
		b.Run(fmt.Sprintf("prefix=%g", frac), func(b *testing.B) {
			var res *matching.Result
			for i := 0; i < b.N; i++ {
				res = matching.PrefixMM(el, ord, matching.Options{PrefixFrac: frac})
			}
			b.ReportMetric(float64(res.Stats.Attempts)/float64(m), "work/M")
			b.ReportMetric(float64(res.Stats.Rounds)/float64(m), "rounds/M")
		})
	}
}

// Figure 1(a-c): MIS work, rounds, time vs prefix size — random graph.
func BenchmarkFig1aMISWorkRandom(b *testing.B) { benchSetup(); misPrefixPanel(b, benchRand, ordRandV) }
func BenchmarkFig1bMISRoundsRandom(b *testing.B) {
	benchSetup()
	misPrefixPanel(b, benchRand, ordRandV)
}
func BenchmarkFig1cMISTimeRandom(b *testing.B) { benchSetup(); misPrefixPanel(b, benchRand, ordRandV) }

// Figure 1(d-f): the same on the rMat graph.
func BenchmarkFig1dMISWorkRMat(b *testing.B)   { benchSetup(); misPrefixPanel(b, benchRMat, ordRMatV) }
func BenchmarkFig1eMISRoundsRMat(b *testing.B) { benchSetup(); misPrefixPanel(b, benchRMat, ordRMatV) }
func BenchmarkFig1fMISTimeRMat(b *testing.B)   { benchSetup(); misPrefixPanel(b, benchRMat, ordRMatV) }

// Figure 2(a-c): MM work, rounds, time vs prefix size — random graph.
func BenchmarkFig2aMMWorkRandom(b *testing.B)   { benchSetup(); mmPrefixPanel(b, elRand, ordRandE) }
func BenchmarkFig2bMMRoundsRandom(b *testing.B) { benchSetup(); mmPrefixPanel(b, elRand, ordRandE) }
func BenchmarkFig2cMMTimeRandom(b *testing.B)   { benchSetup(); mmPrefixPanel(b, elRand, ordRandE) }

// Figure 2(d-f): the same on the rMat graph.
func BenchmarkFig2dMMWorkRMat(b *testing.B)   { benchSetup(); mmPrefixPanel(b, elRMat, ordRMatE) }
func BenchmarkFig2eMMRoundsRMat(b *testing.B) { benchSetup(); mmPrefixPanel(b, elRMat, ordRMatE) }
func BenchmarkFig2fMMTimeRMat(b *testing.B)   { benchSetup(); mmPrefixPanel(b, elRMat, ordRMatE) }

// misThreadsPanel benches the three Figure-3 series at each thread
// count.
func misThreadsPanel(b *testing.B, g *greedy.Graph, ord greedy.Order) {
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d/prefixMIS", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for i := 0; i < b.N; i++ {
				core.PrefixMIS(g, ord, core.Options{})
			}
		})
		b.Run(fmt.Sprintf("threads=%d/luby", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for i := 0; i < b.N; i++ {
				core.LubyMIS(g, benchSeed+9, core.Options{})
			}
		})
		b.Run(fmt.Sprintf("threads=%d/serialMIS", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for i := 0; i < b.N; i++ {
				core.SequentialMIS(g, ord)
			}
		})
	}
}

// Figure 3: MIS running time vs threads (prefix-based vs Luby vs serial).
func BenchmarkFig3aMISThreadsRandom(b *testing.B) {
	benchSetup()
	misThreadsPanel(b, benchRand, ordRandV)
}
func BenchmarkFig3bMISThreadsRMat(b *testing.B) {
	benchSetup()
	misThreadsPanel(b, benchRMat, ordRMatV)
}

func mmThreadsPanel(b *testing.B, el greedy.EdgeList, ord greedy.Order) {
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d/prefixMM", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for i := 0; i < b.N; i++ {
				matching.PrefixMM(el, ord, matching.Options{})
			}
		})
		b.Run(fmt.Sprintf("threads=%d/serialMM", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for i := 0; i < b.N; i++ {
				matching.SequentialMM(el, ord)
			}
		})
	}
}

// Figure 4: MM running time vs threads (prefix-based vs serial).
func BenchmarkFig4aMMThreadsRandom(b *testing.B) { benchSetup(); mmThreadsPanel(b, elRand, ordRandE) }
func BenchmarkFig4bMMThreadsRMat(b *testing.B)   { benchSetup(); mmThreadsPanel(b, elRMat, ordRMatE) }

// In-text claim T1: the prefix-based MIS does less work than Luby
// (paper: 4-8x faster); the metric reports the inspection ratio.
func BenchmarkTextMISvsLuby(b *testing.B) {
	benchSetup()
	pref := core.PrefixMIS(benchRand, ordRandV, core.Options{})
	luby := core.LubyMIS(benchRand, benchSeed+9, core.Options{})
	b.Run("prefixMIS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.PrefixMIS(benchRand, ordRandV, core.Options{})
		}
		b.ReportMetric(float64(luby.Stats.EdgeInspections)/float64(pref.Stats.EdgeInspections), "luby-inspect-ratio")
	})
	b.Run("luby", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.LubyMIS(benchRand, benchSeed+9, core.Options{})
		}
	})
}

// Theory TH1 (Theorem 3.5): dependence length across n; the metric
// reports steps/log2(n)^2 staying bounded.
func BenchmarkTheoremDependenceLength(b *testing.B) {
	for _, n := range []int{10_000, 40_000, 160_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := greedy.RandomGraph(n, 5*n, uint64(n))
			ord := greedy.NewRandomOrder(n, uint64(n)+1)
			var steps int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				steps = greedy.DependenceLength(g, ord)
			}
			lg := 0.0
			for v := n; v > 1; v >>= 1 {
				lg++
			}
			b.ReportMetric(float64(steps), "depLen")
			b.ReportMetric(float64(steps)/(lg*lg), "depLen/log2n^2")
		})
	}
}

// Ablation AB1: rescan-from-scratch vs parent-pointer attempts.
func BenchmarkAblationPointer(b *testing.B) {
	benchSetup()
	for _, frac := range []float64{1e-3, 1e-1, 1.0} {
		b.Run(fmt.Sprintf("scratch/prefix=%g", frac), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.PrefixMIS(benchRand, ordRandV, core.Options{PrefixFrac: frac})
			}
			b.ReportMetric(float64(res.Stats.EdgeInspections), "inspections")
		})
		b.Run(fmt.Sprintf("pointer/prefix=%g", frac), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.PrefixMIS(benchRand, ordRandV, core.Options{PrefixFrac: frac, Pointered: true})
			}
			b.ReportMetric(float64(res.Stats.EdgeInspections), "inspections")
		})
	}
}

// Ablation AB2: the MIS implementation family on one input.
func BenchmarkAblationAlgorithms(b *testing.B) {
	benchSetup()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SequentialMIS(benchRand, ordRandV)
		}
	})
	b.Run("rootset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.RootSetMIS(benchRand, ordRandV, core.Options{})
		}
	})
	b.Run("prefix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.PrefixMIS(benchRand, ordRandV, core.Options{})
		}
	})
	b.Run("parallel-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ParallelMIS(benchRand, ordRandV, core.Options{})
		}
	})
	b.Run("luby", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.LubyMIS(benchRand, benchSeed+9, core.Options{})
		}
	})
}

// Extension X1 (Section 7): spanning forest — sequential, the relaxed
// (PBBS one-root) parallel protocol at full scale, and the exact
// sequential-equivalent protocol at 1/16 scale (its hub serialization
// makes full scale impractical; that asymmetry is the experiment's
// finding).
func BenchmarkSpanningForest(b *testing.B) {
	benchSetup()
	ord := greedy.NewRandomOrder(elRand.NumEdges(), benchSeed+3)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spanning.SequentialSF(elRand, ord)
		}
	})
	b.Run("relaxed-prefix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spanning.PrefixSFRelaxed(elRand, ord, spanning.Options{PrefixFrac: 0.01})
		}
	})
	smallG := greedy.RandomGraph(benchRandN/16, benchRandM/16, benchSeed)
	smallEl := smallG.EdgeList()
	smallOrd := greedy.NewRandomOrder(smallEl.NumEdges(), benchSeed+3)
	b.Run("exact-prefix-1/16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spanning.PrefixSF(smallEl, smallOrd, spanning.Options{PrefixFrac: 0.001})
		}
	})
}
