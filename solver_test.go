package greedy_test

import (
	"context"
	"errors"
	"testing"

	greedy "repro"
)

// cancelAfterRounds returns a context plus an option that cancels it
// once the observed run completes k rounds. Because the observer runs
// between rounds on the solver goroutine, the cancellation must be
// noticed at the next round boundary — the "within one round" bound.
func cancelAfterRounds(k int64) (context.Context, greedy.Option) {
	ctx, cancel := context.WithCancel(context.Background())
	opt := greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
		if ri.Round >= k {
			cancel()
		}
	})
	return ctx, opt
}

func TestSolverCancellationMIS(t *testing.T) {
	g := greedy.RandomGraph(20_000, 100_000, 3)
	for _, algo := range []greedy.Algorithm{
		greedy.AlgoPrefix, greedy.AlgoParallel, greedy.AlgoRootSet, greedy.AlgoLuby,
	} {
		s := greedy.NewSolver(greedy.WithAlgorithm(algo), greedy.WithPrefixSize(64))
		ctx, obs := cancelAfterRounds(1)
		res, err := s.MIS(ctx, g, obs)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: cancelled MIS returned (%v, %v), want ctx.Err()", algo, res, err)
		}
		// The same solver (and workspace) must still run to completion
		// afterwards, and agree with a fresh solver.
		got, err := s.MIS(context.Background(), g)
		if err != nil {
			t.Fatalf("%s: post-cancel run failed: %v", algo, err)
		}
		want, err := greedy.NewSolver(greedy.WithAlgorithm(algo), greedy.WithPrefixSize(64)).MIS(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: post-cancel result differs from fresh solver", algo)
		}
	}
}

func TestSolverCancellationSequentialMIS(t *testing.T) {
	// The sequential scan has no rounds; it checks the context every few
	// thousand iterations. A pre-cancelled context must abort before
	// doing the full scan.
	g := greedy.RandomGraph(50_000, 200_000, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := greedy.NewSolver(greedy.WithAlgorithm(greedy.AlgoSequential))
	if _, err := s.MIS(ctx, g); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sequential MIS returned %v, want ctx.Err()", err)
	}
}

func TestSolverCancellationMM(t *testing.T) {
	g := greedy.RandomGraph(20_000, 100_000, 4)
	el := g.EdgeList()
	s := greedy.NewSolver(greedy.WithPrefixSize(64))
	ctx, obs := cancelAfterRounds(1)
	if _, err := s.MM(ctx, el, obs); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled MM returned %v, want ctx.Err()", err)
	}
	got, err := s.MM(context.Background(), el)
	if err != nil {
		t.Fatal(err)
	}
	if !greedy.IsMaximalMatching(el, got.InMatching) {
		t.Error("post-cancel MM not maximal")
	}
}

func TestSolverCancellationSF(t *testing.T) {
	g := greedy.RandomGraph(20_000, 100_000, 6)
	el := g.EdgeList()
	s := greedy.NewSolver(greedy.WithPrefixSize(64))
	ctx, obs := cancelAfterRounds(1)
	if _, err := s.SF(ctx, el, obs); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled SF returned %v, want ctx.Err()", err)
	}
	if _, err := s.SF(context.Background(), el); err != nil {
		t.Fatalf("post-cancel SF failed: %v", err)
	}
}

func TestSolverCancelledContextBeatsCompletion(t *testing.T) {
	// A context cancelled before the call never returns a result.
	g := greedy.RandomGraph(1000, 5000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := greedy.NewSolver()
	if res, err := s.MIS(ctx, g); err == nil || res != nil {
		t.Errorf("pre-cancelled MIS returned (%v, %v)", res, err)
	}
}

func TestSolverWorkspaceReuseBitIdentical(t *testing.T) {
	big := greedy.RandomGraph(10_000, 50_000, 7)
	small := greedy.RandomGraph(2_000, 8_000, 8)
	ctx := context.Background()
	s := greedy.NewSolver(greedy.WithSeed(9))

	// Two consecutive runs on the same graph, then a run on a smaller
	// graph (exercising size-down buffer reuse), each compared against a
	// fresh solver.
	for i, g := range []*greedy.Graph{big, big, small} {
		got, err := s.MIS(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := greedy.NewSolver(greedy.WithSeed(9)).MIS(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) || got.Stats != want.Stats {
			t.Fatalf("run %d: reused workspace changed the MIS result or stats", i)
		}
	}

	for i, g := range []*greedy.Graph{big, big, small} {
		el := g.EdgeList()
		got, err := s.MM(ctx, el)
		if err != nil {
			t.Fatal(err)
		}
		want, err := greedy.NewSolver(greedy.WithSeed(9)).MM(ctx, el)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) || got.Stats != want.Stats {
			t.Fatalf("run %d: reused workspace changed the MM result or stats", i)
		}
	}

	for i, g := range []*greedy.Graph{big, big, small} {
		el := g.EdgeList()
		got, err := s.SF(ctx, el)
		if err != nil {
			t.Fatal(err)
		}
		want, err := greedy.NewSolver(greedy.WithSeed(9)).SF(ctx, el)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) || got.Stats != want.Stats {
			t.Fatalf("run %d: reused workspace changed the SF result or stats", i)
		}
	}
}

func TestSolverReuseAcrossAlgorithms(t *testing.T) {
	// One solver cycling through algorithms must reproduce each fresh
	// answer: the pooled buffers carry no state between runs.
	g := greedy.RandomGraph(5_000, 25_000, 11)
	ctx := context.Background()
	s := greedy.NewSolver(greedy.WithSeed(2))
	want, err := s.MIS(ctx, g, greedy.WithAlgorithm(greedy.AlgoSequential))
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []greedy.Algorithm{greedy.AlgoPrefix, greedy.AlgoRootSet, greedy.AlgoParallel, greedy.AlgoPrefix} {
		got, err := s.MIS(ctx, g, greedy.WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("algorithm %s on reused solver disagrees with sequential", algo)
		}
	}
}

func TestSolverSecondRunAllocatesStrictlyLess(t *testing.T) {
	g := greedy.RandomGraph(20_000, 100_000, 13)
	ctx := context.Background()

	fresh := testing.AllocsPerRun(5, func() {
		if _, err := greedy.NewSolver().MIS(ctx, g); err != nil {
			t.Fatal(err)
		}
	})
	s := greedy.NewSolver()
	if _, err := s.MIS(ctx, g); err != nil { // first run: sizes the workspace
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(5, func() {
		if _, err := s.MIS(ctx, g); err != nil {
			t.Fatal(err)
		}
	})
	if !(warm < fresh) {
		t.Errorf("warm solver run allocates %.0f, fresh %.0f; want strictly less", warm, fresh)
	}
	t.Logf("MIS allocs/run: fresh=%.0f warm=%.0f", fresh, warm)

	el := g.EdgeList()
	freshMM := testing.AllocsPerRun(5, func() {
		if _, err := greedy.NewSolver().MM(ctx, el); err != nil {
			t.Fatal(err)
		}
	})
	if _, err := s.MM(ctx, el); err != nil {
		t.Fatal(err)
	}
	warmMM := testing.AllocsPerRun(5, func() {
		if _, err := s.MM(ctx, el); err != nil {
			t.Fatal(err)
		}
	})
	if !(warmMM < freshMM) {
		t.Errorf("warm MM run allocates %.0f, fresh %.0f; want strictly less", warmMM, freshMM)
	}
	t.Logf("MM allocs/run: fresh=%.0f warm=%.0f", freshMM, warmMM)
}

func TestSolverErrorsInsteadOfPanics(t *testing.T) {
	g := greedy.RandomGraph(100, 400, 1)
	el := g.EdgeList()
	ctx := context.Background()
	s := greedy.NewSolver()

	if _, err := s.MM(ctx, el, greedy.WithAlgorithm(greedy.AlgoLuby)); !errors.Is(err, greedy.ErrLubyMatching) {
		t.Errorf("Luby MM returned %v, want ErrLubyMatching", err)
	}
	bad := greedy.NewRandomOrder(7, 1)
	if _, err := s.MIS(ctx, g, greedy.WithOrder(bad)); !errors.Is(err, greedy.ErrOrderSize) {
		t.Errorf("mismatched order returned %v, want ErrOrderSize", err)
	}
	if _, err := s.MM(ctx, el, greedy.WithOrder(bad)); !errors.Is(err, greedy.ErrOrderSize) {
		t.Errorf("mismatched MM order returned %v, want ErrOrderSize", err)
	}
	if _, err := s.SF(ctx, el, greedy.WithAlgorithm(greedy.AlgoRootSet)); !errors.Is(err, greedy.ErrSpanningAlgorithm) {
		t.Errorf("SF rootset returned %v, want ErrSpanningAlgorithm", err)
	}
}

func TestSolverRoundObserverConsistency(t *testing.T) {
	g := greedy.RandomGraph(5_000, 25_000, 17)
	ctx := context.Background()
	var rounds int64
	var attempted, accepted, inspections int64
	var prefix int
	s := greedy.NewSolver(greedy.WithPrefixFrac(0.05))
	res, err := s.MIS(ctx, g, greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
		rounds++
		if ri.Round != rounds {
			t.Fatalf("round %d reported out of order (want %d)", ri.Round, rounds)
		}
		attempted += int64(ri.Attempted)
		accepted += int64(ri.Accepted)
		inspections += ri.EdgeInspections
		prefix = ri.PrefixSize
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rounds != res.Stats.Rounds {
		t.Errorf("observer saw %d rounds, stats say %d", rounds, res.Stats.Rounds)
	}
	if attempted != res.Stats.Attempts {
		t.Errorf("observer attempted %d, stats %d", attempted, res.Stats.Attempts)
	}
	if accepted != int64(g.NumVertices()) {
		t.Errorf("observer accepted %d, want n=%d", accepted, g.NumVertices())
	}
	if inspections != res.Stats.EdgeInspections {
		t.Errorf("observer inspections %d, stats %d", inspections, res.Stats.EdgeInspections)
	}
	if prefix != res.Stats.PrefixSize {
		t.Errorf("observer prefix %d, stats %d", prefix, res.Stats.PrefixSize)
	}

	// The observer is read-only: same answer with and without.
	plain, err := greedy.NewSolver(greedy.WithPrefixFrac(0.05)).MIS(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(res) || plain.Stats != res.Stats {
		t.Error("observer changed the computation")
	}
}

// TestSolverRoundObserverFanOut: WithRoundObserver composes — a
// default observer on the Solver and a per-call observer both see
// every round, in registration order (defaults first), with identical
// payloads. This is the contract the service layer's trace recording
// relies on: attaching telemetry must not clobber a user observer.
func TestSolverRoundObserverFanOut(t *testing.T) {
	g := greedy.RandomGraph(5_000, 25_000, 17)
	ctx := context.Background()
	var defaultSeen, callSeen []greedy.RoundInfo
	var order []string
	s := greedy.NewSolver(
		greedy.WithPrefixFrac(0.05),
		greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
			defaultSeen = append(defaultSeen, ri)
			order = append(order, "default")
		}),
	)
	res, err := s.MIS(ctx, g, greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
		callSeen = append(callSeen, ri)
		order = append(order, "call")
	}))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(defaultSeen)) != res.Stats.Rounds || int64(len(callSeen)) != res.Stats.Rounds {
		t.Fatalf("observers saw %d/%d rounds, stats say %d", len(defaultSeen), len(callSeen), res.Stats.Rounds)
	}
	for i := range defaultSeen {
		if defaultSeen[i] != callSeen[i] {
			t.Fatalf("round %d: observers disagree: %+v vs %+v", i+1, defaultSeen[i], callSeen[i])
		}
	}
	for i := 0; i < len(order); i += 2 {
		if order[i] != "default" || order[i+1] != "call" {
			t.Fatalf("fan-out order at round %d: %v, want default before call", i/2+1, order[i:i+2])
		}
	}
	// A nil observer is ignored rather than registered.
	if _, err := s.MIS(ctx, g, greedy.WithRoundObserver(nil)); err != nil {
		t.Fatal(err)
	}
}

func TestSolverDefaultsAndOverrides(t *testing.T) {
	g := greedy.RandomGraph(2_000, 8_000, 19)
	ctx := context.Background()
	s := greedy.NewSolver(greedy.WithSeed(5), greedy.WithPrefixSize(33))
	res, err := s.MIS(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrefixSize != 33 {
		t.Errorf("solver default prefix not applied: %d", res.Stats.PrefixSize)
	}
	over, err := s.MIS(ctx, g, greedy.WithPrefixSize(65))
	if err != nil {
		t.Fatal(err)
	}
	if over.Stats.PrefixSize != 65 {
		t.Errorf("per-call override not applied: %d", over.Stats.PrefixSize)
	}
	if !res.Equal(over) {
		t.Error("prefix size changed the selected set")
	}
}

// BenchmarkSolverMISReused vs BenchmarkSolverMISFresh quantify the
// workspace win the Solver API exists for: the reused variant allocates
// only the returned Result, the fresh variant pays the full set of
// per-run arrays (status, frontier, outcome, priority order) each time.
func BenchmarkSolverMISReused(b *testing.B) {
	g := greedy.RandomGraph(100_000, 500_000, 42)
	ctx := context.Background()
	s := greedy.NewSolver(greedy.WithSeed(7))
	if _, err := s.MIS(ctx, g); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MIS(ctx, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverMISFresh(b *testing.B) {
	g := greedy.RandomGraph(100_000, 500_000, 42)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := greedy.NewSolver(greedy.WithSeed(7)).MIS(ctx, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverMMReused(b *testing.B) {
	g := greedy.RandomGraph(100_000, 500_000, 42)
	el := g.EdgeList()
	ctx := context.Background()
	s := greedy.NewSolver(greedy.WithSeed(7))
	if _, err := s.MM(ctx, el); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MM(ctx, el); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverMMFresh(b *testing.B) {
	g := greedy.RandomGraph(100_000, 500_000, 42)
	el := g.EdgeList()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := greedy.NewSolver(greedy.WithSeed(7)).MM(ctx, el); err != nil {
			b.Fatal(err)
		}
	}
}
