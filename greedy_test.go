package greedy_test

import (
	"runtime"
	"testing"

	greedy "repro"
)

func TestFacadeMISDefault(t *testing.T) {
	g := greedy.RandomGraph(2000, 10000, 3)
	res := greedy.MaximalIndependentSet(g, greedy.WithSeed(7))
	if !greedy.IsMaximalIndependentSet(g, res.InSet) {
		t.Fatal("facade MIS not maximal independent")
	}
	ord := greedy.NewRandomOrder(g.NumVertices(), 7)
	if err := greedy.VerifyLexFirstMIS(g, ord, res); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMISAlgorithmsAgree(t *testing.T) {
	g := greedy.RMatGraph(10, 4000, 5)
	want := greedy.MaximalIndependentSet(g, greedy.WithSeed(2), greedy.WithAlgorithm(greedy.AlgoSequential))
	for _, algo := range []greedy.Algorithm{
		greedy.AlgoPrefix, greedy.AlgoRootSet, greedy.AlgoParallel,
	} {
		got := greedy.MaximalIndependentSet(g, greedy.WithSeed(2), greedy.WithAlgorithm(algo))
		if !got.Equal(want) {
			t.Errorf("algorithm %d disagrees with sequential", algo)
		}
	}
	luby := greedy.MaximalIndependentSet(g, greedy.WithSeed(2), greedy.WithAlgorithm(greedy.AlgoLuby))
	if !greedy.IsMaximalIndependentSet(g, luby.InSet) {
		t.Error("Luby result not a maximal independent set")
	}
}

func TestFacadeMISOptions(t *testing.T) {
	g := greedy.RandomGraph(1000, 5000, 1)
	a := greedy.MaximalIndependentSet(g, greedy.WithSeed(4), greedy.WithPrefixSize(17))
	b := greedy.MaximalIndependentSet(g, greedy.WithSeed(4), greedy.WithPrefixFrac(0.5), greedy.WithGrain(8))
	c := greedy.MaximalIndependentSet(g, greedy.WithSeed(4), greedy.WithPointer())
	if !a.Equal(b) || !a.Equal(c) {
		t.Error("prefix size/frac/pointer options changed the result")
	}
	if a.Stats.PrefixSize != 17 {
		t.Errorf("WithPrefixSize not honored: %d", a.Stats.PrefixSize)
	}
}

func TestFacadeExplicitOrder(t *testing.T) {
	g := greedy.RandomGraph(500, 2000, 9)
	ord := greedy.NewRandomOrder(g.NumVertices(), 11)
	a := greedy.MaximalIndependentSet(g, greedy.WithOrder(ord))
	b := greedy.MaximalIndependentSet(g, greedy.WithSeed(11))
	if !a.Equal(b) {
		t.Error("WithOrder(NewRandomOrder(seed)) differs from WithSeed(seed)")
	}
}

func TestFacadeMM(t *testing.T) {
	g := greedy.RandomGraph(2000, 8000, 6)
	res := greedy.MaximalMatching(g, greedy.WithSeed(3))
	el := g.EdgeList()
	if !greedy.IsMaximalMatching(el, res.InMatching) {
		t.Fatal("facade MM not maximal")
	}
	ord := greedy.NewRandomOrder(el.NumEdges(), 3)
	if err := greedy.VerifyLexFirstMM(el, ord, res); err != nil {
		t.Fatal(err)
	}
	seq := greedy.MaximalMatching(g, greedy.WithSeed(3), greedy.WithAlgorithm(greedy.AlgoSequential))
	root := greedy.MaximalMatching(g, greedy.WithSeed(3), greedy.WithAlgorithm(greedy.AlgoRootSet))
	if !res.Equal(seq) || !res.Equal(root) {
		t.Error("facade MM algorithms disagree")
	}
}

func TestFacadeMMLubyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AlgoLuby for matching did not panic")
		}
	}()
	g := greedy.RandomGraph(10, 20, 1)
	greedy.MaximalMatching(g, greedy.WithAlgorithm(greedy.AlgoLuby))
}

func TestFacadeSpanningForest(t *testing.T) {
	g := greedy.RandomGraph(3000, 9000, 8)
	seq := greedy.SpanningForest(g, greedy.WithSeed(2), greedy.WithAlgorithm(greedy.AlgoSequential))
	par := greedy.SpanningForest(g, greedy.WithSeed(2), greedy.WithPrefixFrac(0.05))
	// The default parallel forest uses relaxed (PBBS) semantics: a valid
	// forest of the same size, deterministic per prefix, but not
	// necessarily the sequential edge set.
	if par.Size() != seq.Size() {
		t.Errorf("forest sizes differ: %d vs %d", par.Size(), seq.Size())
	}
	again := greedy.SpanningForest(g, greedy.WithSeed(2), greedy.WithPrefixFrac(0.05))
	if !par.Equal(again) {
		t.Error("parallel spanning forest not deterministic across runs")
	}
	if seq.Size() == 0 {
		t.Error("empty spanning forest on a connected-ish graph")
	}
}

func TestFacadeDeterministicAcrossThreadCounts(t *testing.T) {
	// The paper's headline property: same order => same answer at any
	// parallelism level.
	g := greedy.RandomGraph(5000, 30000, 13)
	var results []*greedy.MISResult
	var mmResults []*greedy.MMResult
	for _, procs := range []int{1, 2, 4} {
		old := runtime.GOMAXPROCS(procs)
		results = append(results, greedy.MaximalIndependentSet(g, greedy.WithSeed(5)))
		mmResults = append(mmResults, greedy.MaximalMatching(g, greedy.WithSeed(5)))
		runtime.GOMAXPROCS(old)
	}
	for i := 1; i < len(results); i++ {
		if !results[0].Equal(results[i]) {
			t.Fatal("MIS result depends on GOMAXPROCS")
		}
		if !mmResults[0].Equal(mmResults[i]) {
			t.Fatal("MM result depends on GOMAXPROCS")
		}
	}
}

func TestFacadeDependenceLength(t *testing.T) {
	g := greedy.RandomGraph(10000, 50000, 21)
	d := greedy.DependenceLength(g, greedy.NewRandomOrder(g.NumVertices(), 22))
	if d < 1 || d > 400 {
		t.Errorf("dependence length = %d, outside plausible polylog range", d)
	}
}

func TestFacadeOrderMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched order accepted")
		}
	}()
	g := greedy.RandomGraph(10, 20, 1)
	greedy.MaximalIndependentSet(g, greedy.WithOrder(greedy.NewRandomOrder(5, 1)))
}

func TestFacadeNewGraph(t *testing.T) {
	g, err := greedy.NewGraph(3, []greedy.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("m = %d", g.NumEdges())
	}
	if _, err := greedy.NewGraph(2, []greedy.Edge{{U: 0, V: 9}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}
