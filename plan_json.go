package greedy

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// planJSON is the wire form of a Plan: algorithms travel by canonical
// name (Algorithm.String / ParseAlgorithm), never by numeric value, so
// payloads stay readable and stable if the enum is ever reordered.
type planJSON struct {
	Algorithm string `json:"algorithm"`
	Seed      uint64 `json:"seed"`
	// Prefix selects the window schedule: absent or "fixed" runs the
	// fixed window PrefixFrac/PrefixSize denote; "adaptive" runs the
	// measured doubling/halving schedule (the fields then seed the
	// initial window). Any other value is rejected.
	Prefix     string  `json:"prefix,omitempty"`
	PrefixFrac float64 `json:"prefix_frac,omitempty"`
	PrefixSize int     `json:"prefix_size,omitempty"`
	// Dynamic selects churn-stable priorities (WithDynamic): the plans
	// the service can answer by incremental repair across graph
	// versions instead of recomputing.
	Dynamic       bool `json:"dynamic,omitempty"`
	Grain         int  `json:"grain,omitempty"`
	Pointered     bool `json:"pointered,omitempty"`
	ExplicitOrder bool `json:"explicit_order,omitempty"`
}

// Wire values of planJSON.Prefix.
const (
	prefixWireFixed    = "fixed"
	prefixWireAdaptive = "adaptive"
)

// MarshalJSON encodes the Plan with its algorithm's canonical name.
// Plans round-trip exactly: UnmarshalJSON(MarshalJSON(p)) == p. The
// service layer uses this as the wire form of job submissions.
func (p Plan) MarshalJSON() ([]byte, error) {
	prefix := ""
	if p.AdaptivePrefix {
		prefix = prefixWireAdaptive
	}
	return json.Marshal(planJSON{
		Algorithm:     p.Algorithm.String(),
		Seed:          p.Seed,
		Prefix:        prefix,
		PrefixFrac:    p.PrefixFrac,
		PrefixSize:    p.PrefixSize,
		Dynamic:       p.Dynamic,
		Grain:         p.Grain,
		Pointered:     p.Pointered,
		ExplicitOrder: p.ExplicitOrder,
	})
}

// UnmarshalJSON decodes a Plan, resolving the algorithm by canonical
// name (the empty string and an absent field select the default,
// AlgoPrefix) and rejecting unknown algorithm names and unknown fields
// — a submission with a typoed tuning knob fails loudly instead of
// silently running the default configuration.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var raw planJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return fmt.Errorf("greedy: bad plan: %w", err)
	}
	algo, err := ParseAlgorithm(raw.Algorithm)
	if err != nil {
		return err
	}
	adaptive := false
	switch raw.Prefix {
	case "", prefixWireFixed:
	case prefixWireAdaptive:
		adaptive = true
	default:
		return fmt.Errorf("greedy: bad plan: unknown prefix schedule %q (want fixed|adaptive)", raw.Prefix)
	}
	*p = Plan{
		Algorithm:      algo,
		Seed:           raw.Seed,
		AdaptivePrefix: adaptive,
		PrefixFrac:     raw.PrefixFrac,
		PrefixSize:     raw.PrefixSize,
		Dynamic:        raw.Dynamic,
		Grain:          raw.Grain,
		Pointered:      raw.Pointered,
		ExplicitOrder:  raw.ExplicitOrder,
	}
	return nil
}
