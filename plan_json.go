package greedy

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// planJSON is the wire form of a Plan: algorithms travel by canonical
// name (Algorithm.String / ParseAlgorithm), never by numeric value, so
// payloads stay readable and stable if the enum is ever reordered.
type planJSON struct {
	Algorithm     string  `json:"algorithm"`
	Seed          uint64  `json:"seed"`
	PrefixFrac    float64 `json:"prefix_frac,omitempty"`
	PrefixSize    int     `json:"prefix_size,omitempty"`
	Grain         int     `json:"grain,omitempty"`
	Pointered     bool    `json:"pointered,omitempty"`
	ExplicitOrder bool    `json:"explicit_order,omitempty"`
}

// MarshalJSON encodes the Plan with its algorithm's canonical name.
// Plans round-trip exactly: UnmarshalJSON(MarshalJSON(p)) == p. The
// service layer uses this as the wire form of job submissions.
func (p Plan) MarshalJSON() ([]byte, error) {
	return json.Marshal(planJSON{
		Algorithm:     p.Algorithm.String(),
		Seed:          p.Seed,
		PrefixFrac:    p.PrefixFrac,
		PrefixSize:    p.PrefixSize,
		Grain:         p.Grain,
		Pointered:     p.Pointered,
		ExplicitOrder: p.ExplicitOrder,
	})
}

// UnmarshalJSON decodes a Plan, resolving the algorithm by canonical
// name (the empty string and an absent field select the default,
// AlgoPrefix) and rejecting unknown algorithm names and unknown fields
// — a submission with a typoed tuning knob fails loudly instead of
// silently running the default configuration.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var raw planJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return fmt.Errorf("greedy: bad plan: %w", err)
	}
	algo, err := ParseAlgorithm(raw.Algorithm)
	if err != nil {
		return err
	}
	*p = Plan{
		Algorithm:     algo,
		Seed:          raw.Seed,
		PrefixFrac:    raw.PrefixFrac,
		PrefixSize:    raw.PrefixSize,
		Grain:         raw.Grain,
		Pointered:     raw.Pointered,
		ExplicitOrder: raw.ExplicitOrder,
	}
	return nil
}
