package greedy_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	greedy "repro"
)

// TestSolverAdaptiveBitIdentical is the facade-level acceptance check:
// WithAdaptivePrefix produces bit-identical MIS and MM results to the
// fixed-prefix and sequential paths, on several graph families.
func TestSolverAdaptiveBitIdentical(t *testing.T) {
	ctx := context.Background()
	graphs := map[string]*greedy.Graph{
		"random": greedy.RandomGraph(3000, 15000, 5),
		"rmat":   greedy.RMatGraph(11, 8000, 5),
	}
	s := greedy.NewSolver(greedy.WithSeed(7))
	for name, g := range graphs {
		seqMIS, err := s.MIS(ctx, g, greedy.WithAlgorithm(greedy.AlgoSequential))
		if err != nil {
			t.Fatal(err)
		}
		fixedMIS, err := s.MIS(ctx, g, greedy.WithPrefixFrac(0.01))
		if err != nil {
			t.Fatal(err)
		}
		adMIS, err := s.MIS(ctx, g, greedy.WithAdaptivePrefix())
		if err != nil {
			t.Fatal(err)
		}
		if !adMIS.Equal(seqMIS) || !adMIS.Equal(fixedMIS) {
			t.Errorf("%s: adaptive MIS differs from sequential/fixed", name)
		}

		el := g.EdgeList()
		seqMM, err := s.MM(ctx, el, greedy.WithAlgorithm(greedy.AlgoSequential))
		if err != nil {
			t.Fatal(err)
		}
		adMM, err := s.MM(ctx, el, greedy.WithAdaptivePrefix())
		if err != nil {
			t.Fatal(err)
		}
		if !adMM.Equal(seqMM) {
			t.Errorf("%s: adaptive MM differs from sequential", name)
		}

		// The facade's prefix SF is the relaxed algorithm: an adaptive
		// run must be a deterministic, full-cardinality spanning forest
		// (every spanning forest of an input has the same size).
		seqSF, err := s.SF(ctx, el, greedy.WithAlgorithm(greedy.AlgoSequential))
		if err != nil {
			t.Fatal(err)
		}
		adSF, err := s.SF(ctx, el, greedy.WithAdaptivePrefix())
		if err != nil {
			t.Fatal(err)
		}
		if adSF.Size() != seqSF.Size() {
			t.Errorf("%s: adaptive SF size %d, sequential %d", name, adSF.Size(), seqSF.Size())
		}
		adSF2, err := s.SF(ctx, el, greedy.WithAdaptivePrefix())
		if err != nil {
			t.Fatal(err)
		}
		if !adSF.Equal(adSF2) {
			t.Errorf("%s: adaptive SF not deterministic across reruns", name)
		}
	}
}

// TestAdaptiveRequiresPrefixAlgorithm: every non-prefix algorithm
// rejects WithAdaptivePrefix with ErrAdaptiveAlgorithm, on all three
// problems.
func TestAdaptiveRequiresPrefixAlgorithm(t *testing.T) {
	ctx := context.Background()
	g := greedy.RandomGraph(200, 800, 1)
	el := g.EdgeList()
	s := greedy.NewSolver(greedy.WithAdaptivePrefix())
	for _, algo := range []greedy.Algorithm{
		greedy.AlgoSequential, greedy.AlgoRootSet, greedy.AlgoParallel, greedy.AlgoLuby,
	} {
		if _, err := s.MIS(ctx, g, greedy.WithAlgorithm(algo)); !errors.Is(err, greedy.ErrAdaptiveAlgorithm) {
			t.Errorf("MIS %v: err = %v, want ErrAdaptiveAlgorithm", algo, err)
		}
	}
	if _, err := s.MM(ctx, el, greedy.WithAlgorithm(greedy.AlgoSequential)); !errors.Is(err, greedy.ErrAdaptiveAlgorithm) {
		t.Errorf("MM sequential: err = %v, want ErrAdaptiveAlgorithm", err)
	}
	if _, err := s.SF(ctx, el, greedy.WithAlgorithm(greedy.AlgoSequential)); !errors.Is(err, greedy.ErrAdaptiveAlgorithm) {
		t.Errorf("SF sequential: err = %v, want ErrAdaptiveAlgorithm", err)
	}
	// The default (prefix) accepts it.
	if _, err := s.MIS(ctx, g); err != nil {
		t.Errorf("MIS prefix adaptive: %v", err)
	}
}

// TestAdaptiveObserverSeesSchedule: a round observer on an adaptive run
// watches the window grow from the start window, and the reported
// maximum matches Stats.PrefixSize.
func TestAdaptiveObserverSeesSchedule(t *testing.T) {
	ctx := context.Background()
	g := greedy.RandomGraph(20000, 100000, 3)
	var first, maxW int
	s := greedy.NewSolver()
	res, err := s.MIS(ctx, g, greedy.WithAdaptivePrefix(), greedy.WithRoundObserver(func(ri greedy.RoundInfo) {
		if first == 0 {
			first = ri.PrefixSize
		}
		if ri.PrefixSize > maxW {
			maxW = ri.PrefixSize
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if first == 0 || first > 256 {
		t.Errorf("first adaptive window %d, want the start window (<= 256)", first)
	}
	if maxW <= first {
		t.Errorf("window never grew: first %d, max %d", first, maxW)
	}
	if maxW != res.Stats.PrefixSize {
		t.Errorf("observer max window %d, Stats.PrefixSize %d", maxW, res.Stats.PrefixSize)
	}
}

// TestAdaptivePlanRoundTrip: AdaptivePrefix survives ResolvePlan →
// Options → ResolvePlan and the JSON wire form ("prefix": "adaptive").
func TestAdaptivePlanRoundTrip(t *testing.T) {
	p := greedy.ResolvePlan(greedy.WithAdaptivePrefix(), greedy.WithSeed(9))
	if !p.AdaptivePrefix {
		t.Fatal("ResolvePlan dropped AdaptivePrefix")
	}
	if back := greedy.ResolvePlan(p.Options()...); back != p {
		t.Fatalf("plan options round trip %+v, want %+v", back, p)
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back greedy.Plan
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
	if back != p {
		t.Fatalf("JSON round trip %+v -> %s -> %+v", p, raw, back)
	}

	var q greedy.Plan
	if err := json.Unmarshal([]byte(`{"algorithm":"prefix","seed":2,"prefix":"adaptive"}`), &q); err != nil {
		t.Fatal(err)
	}
	if !q.AdaptivePrefix {
		t.Fatal(`"prefix":"adaptive" not decoded`)
	}
	if err := json.Unmarshal([]byte(`{"algorithm":"prefix","prefix":"fixed"}`), &q); err != nil || q.AdaptivePrefix {
		t.Fatalf(`"prefix":"fixed": %+v, %v`, q, err)
	}
	if err := json.Unmarshal([]byte(`{"prefix":"sometimes"}`), &q); err == nil {
		t.Fatal("unknown prefix schedule accepted")
	}
	if err := json.Unmarshal([]byte(`{"prefix":0.5}`), &q); err == nil {
		t.Fatal("numeric prefix field accepted")
	}
}
