package greedy_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	greedy "repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/spanning"
)

// TestEndToEndPipeline exercises the full user workflow across modules:
// generate a graph, serialize it to disk in each format, read it back,
// run every solver on the round-tripped graph, and verify the results
// against the sequential specifications.
func TestEndToEndPipeline(t *testing.T) {
	g := greedy.RMatGraph(11, 6000, 99)
	dir := t.TempDir()

	write := map[string]func(*graph.Graph, *os.File) error{
		"g.adj": func(g *graph.Graph, f *os.File) error { return graph.WriteAdjacency(f, g) },
		"g.el":  func(g *graph.Graph, f *os.File) error { return graph.WriteEdgeArray(f, g) },
		"g.bin": func(g *graph.Graph, f *os.File) error { return graph.WriteBinary(f, g) },
	}
	for name, w := range write {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w(g, f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		in, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := graph.ReadAuto(in)
		in.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if loaded.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: round trip changed edge count", name)
		}
		// The EdgeArray format cannot represent trailing isolated
		// vertices (n is inferred from the largest endpoint); the other
		// formats are exact.
		if name != "g.el" && loaded.NumVertices() != g.NumVertices() {
			t.Fatalf("%s: round trip changed vertex count", name)
		}

		// Solve everything on the loaded graph and verify.
		mis := greedy.MaximalIndependentSet(loaded, greedy.WithSeed(3))
		if err := greedy.VerifyLexFirstMIS(loaded, greedy.NewRandomOrder(loaded.NumVertices(), 3), mis); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		mm := greedy.MaximalMatching(loaded, greedy.WithSeed(3))
		el := loaded.EdgeList()
		if err := greedy.VerifyLexFirstMM(el, greedy.NewRandomOrder(el.NumEdges(), 3), mm); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		sf := greedy.SpanningForest(loaded, greedy.WithSeed(3))
		if !spanning.IsForest(el, sf.InForest) || !spanning.IsSpanning(el, sf.InForest) {
			t.Errorf("%s: spanning forest invalid", name)
		}
	}
}

// TestCrossModuleMISMMConsistency checks a structural relationship
// between the two problems: the matched edges of the greedy MM form an
// independent set in the line graph, and MM-as-MIS-on-line-graph equals
// the direct algorithm (Lemma 5.1 at integration level, through the
// public API layers).
func TestCrossModuleMISMMConsistency(t *testing.T) {
	g := greedy.RandomGraph(300, 900, 17)
	el := g.EdgeList()
	ord := greedy.NewRandomOrder(el.NumEdges(), 4)

	direct := matching.PrefixMM(el, ord, matching.Options{PrefixFrac: 0.1})
	viaLG := matching.ViaLineGraphMIS(g, ord)
	if !direct.Equal(viaLG) {
		t.Fatal("direct MM and line-graph MIS disagree")
	}

	lg, _ := graph.LineGraph(g)
	if !core.IsIndependentSet(lg, direct.InMatching) {
		t.Fatal("matching is not independent in the line graph")
	}
	if !core.IsMaximalIndependentSet(lg, direct.InMatching) {
		t.Fatal("matching is not maximal in the line graph")
	}
}

// TestAnalyzerExecutableAgreement ties the analytic tools to the real
// executions across a structured zoo of graphs: the analyzer's MIS
// equals the executed MIS, and the root-set executions realize exactly
// the analyzer's dependence lengths (MIS and MM).
func TestAnalyzerExecutableAgreement(t *testing.T) {
	zoo := []*graph.Graph{
		greedy.RandomGraph(400, 1600, 1),
		greedy.RMatGraph(9, 1500, 2),
		graph.Grid2D(20, 21),
		graph.Torus2D(15, 15),
		graph.RandomTree(300, 3),
		graph.NearRegular(200, 8, 4),
		graph.CompleteBipartite(25, 30),
	}
	for i, g := range zoo {
		ord := greedy.NewRandomOrder(g.NumVertices(), uint64(i)+50)
		info := core.DependenceSteps(g, ord)
		exec := core.RootSetMIS(g, ord, core.Options{})
		if int(exec.Stats.Rounds) != info.Steps {
			t.Errorf("graph %d: rootset steps %d != analyzer %d", i, exec.Stats.Rounds, info.Steps)
		}
		for v := range info.InSet {
			if info.InSet[v] != exec.InSet[v] {
				t.Fatalf("graph %d: analyzer and execution disagree at vertex %d", i, v)
			}
		}

		el := g.EdgeList()
		if el.NumEdges() == 0 {
			continue
		}
		mmOrd := greedy.NewRandomOrder(el.NumEdges(), uint64(i)+80)
		mmInfo := matching.DependenceSteps(el, mmOrd)
		mmExec := matching.RootSetMM(el, mmOrd, matching.Options{})
		if int(mmExec.Stats.Rounds) != mmInfo.Steps {
			t.Errorf("graph %d: MM rootset steps %d != analyzer %d", i, mmExec.Stats.Rounds, mmInfo.Steps)
		}
	}
}

// TestGraphFormatsInteroperate writes with one format and verifies the
// canonical edge list survives every conversion path.
func TestGraphFormatsInteroperate(t *testing.T) {
	g := greedy.RandomGraph(120, 500, 8)
	var adj, el, bin bytes.Buffer
	if err := graph.WriteAdjacency(&adj, g); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeArray(&el, g); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	fromAdj, err := graph.ReadAuto(&adj)
	if err != nil {
		t.Fatal(err)
	}
	fromEl, err := graph.ReadAuto(&el)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := graph.ReadAuto(&bin)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := fromAdj.Edges(), fromEl.Edges(), fromBin.Edges()
	if len(a) != len(b) || len(b) != len(c) {
		t.Fatal("edge counts differ across formats")
	}
	for i := range a {
		if a[i] != b[i] || b[i] != c[i] {
			t.Fatalf("edge %d differs across formats", i)
		}
	}
}
