package greedy

import (
	"context"
	"errors"
	"testing"
)

// TestMISDynamicSession drives a session through updates and checks
// agreement with from-scratch Solver.MIS runs on the mutated graph.
func TestMISDynamicSession(t *testing.T) {
	ctx := context.Background()
	g := RandomGraph(2000, 8000, 3)
	solver := NewSolver(WithSeed(11))
	sess, err := solver.MISDynamic(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		cur := sess.Graph()
		want, err := solver.MIS(ctx, cur)
		if err != nil {
			t.Fatal(err)
		}
		if !sess.Result().Equal(want) {
			t.Fatal("session MIS differs from from-scratch Solver.MIS on the current graph")
		}
	}
	check()
	batches := [][]DynamicUpdate{
		{{Op: OpAdd, U: 0, V: 1999}},
		{{Op: OpDel, U: 0, V: 1999}, {Op: OpAdd, U: 5, V: 6}},
	}
	for _, b := range batches {
		// The generated graph may already contain an edge we want to
		// add; skip those updates to keep batches valid.
		valid := b[:0]
		for _, up := range b {
			if up.Op == OpAdd && sess.Graph().HasEdge(up.U, up.V) {
				continue
			}
			if up.Op == OpDel && !sess.Graph().HasEdge(up.U, up.V) {
				continue
			}
			valid = append(valid, up)
		}
		if len(valid) == 0 {
			continue
		}
		if _, err := sess.Apply(ctx, valid); err != nil {
			t.Fatal(err)
		}
		check()
	}
	if sess.NumVertices() != 2000 {
		t.Fatalf("NumVertices = %d", sess.NumVertices())
	}
	if sess.InitStats().Rounds == 0 {
		t.Fatal("InitStats empty")
	}
}

// TestMMDynamicSession checks the matching session against one-shot
// WithDynamic runs — the equivalence the service's
// repair-or-recompute interchangeability rests on.
func TestMMDynamicSession(t *testing.T) {
	ctx := context.Background()
	g := RandomGraph(1000, 4000, 9)
	solver := NewSolver(WithSeed(4))
	sess, err := solver.MMDynamic(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		cur := sess.Graph()
		want, err := solver.MM(ctx, cur.EdgeList(), WithDynamic())
		if err != nil {
			t.Fatal(err)
		}
		got := sess.Pairs()
		if len(got) != len(want.Pairs) {
			t.Fatalf("session matching has %d pairs, from-scratch dynamic MM has %d", len(got), len(want.Pairs))
		}
		for i := range got {
			if got[i] != want.Pairs[i] {
				t.Fatalf("pair %d: session %v vs from-scratch %v", i, got[i], want.Pairs[i])
			}
		}
	}
	check()
	if !sess.Graph().HasEdge(0, 999) {
		if _, err := sess.Apply(ctx, []DynamicUpdate{{Op: OpAdd, U: 0, V: 999}}); err != nil {
			t.Fatal(err)
		}
		check()
	}
	// Delete a matched edge: forces real repair work.
	pairs := sess.Pairs()
	if len(pairs) == 0 {
		t.Fatal("empty matching on a dense random graph")
	}
	e := pairs[len(pairs)/2]
	st, err := sess.Apply(ctx, []DynamicUpdate{{Op: OpDel, U: e.U, V: e.V}})
	if err != nil {
		t.Fatal(err)
	}
	if st.MM.Seeds == 0 {
		t.Fatal("deleting a matched edge produced no repair seeds")
	}
	check()
}

// TestDynamicOptionOnSolver checks the one-shot WithDynamic semantics:
// a no-op for MIS selection, a different (hash-priority) matching for
// MM, and rejections for SF / Luby / explicit orders.
func TestDynamicOptionOnSolver(t *testing.T) {
	ctx := context.Background()
	g := RandomGraph(500, 2000, 2)
	solver := NewSolver(WithSeed(6))

	plain, err := solver.MIS(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := solver.MIS(ctx, g, WithDynamic())
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(dyn) {
		t.Fatal("WithDynamic changed the MIS (the vertex order is churn-stable already)")
	}

	el := g.EdgeList()
	mmDyn, err := solver.MM(ctx, el, WithDynamic())
	if err != nil {
		t.Fatal(err)
	}
	// Must equal the sequential matching under the exposed dynamic
	// order at any algorithm.
	seqDyn, err := solver.MM(ctx, el, WithDynamic(), WithAlgorithm(AlgoSequential))
	if err != nil {
		t.Fatal(err)
	}
	if !mmDyn.Equal(seqDyn) {
		t.Fatal("dynamic MM differs between prefix and sequential algorithms")
	}

	if _, err := solver.SF(ctx, el, WithDynamic()); !errors.Is(err, ErrDynamicUnsupported) {
		t.Fatalf("SF with WithDynamic: got %v, want ErrDynamicUnsupported", err)
	}
	if _, err := solver.MIS(ctx, g, WithDynamic(), WithAlgorithm(AlgoLuby)); !errors.Is(err, ErrDynamicUnsupported) {
		t.Fatalf("Luby with WithDynamic: got %v, want ErrDynamicUnsupported", err)
	}
	ord := NewRandomOrder(el.NumEdges(), 1)
	if _, err := solver.MM(ctx, el, WithDynamic(), WithOrder(ord)); !errors.Is(err, ErrDynamicUnsupported) {
		t.Fatalf("MM WithOrder+WithDynamic: got %v, want ErrDynamicUnsupported", err)
	}
	if _, err := solver.MMDynamic(ctx, g, WithOrder(ord)); !errors.Is(err, ErrDynamicUnsupported) {
		t.Fatalf("MMDynamic WithOrder: got %v, want ErrDynamicUnsupported", err)
	}
	if _, err := solver.MISDynamic(ctx, g, WithAlgorithm(AlgoLuby)); !errors.Is(err, ErrDynamicUnsupported) {
		t.Fatalf("MISDynamic Luby: got %v, want ErrDynamicUnsupported", err)
	}
}

// TestPlanDynamicRoundTrip checks the wire form of dynamic plans.
func TestPlanDynamicRoundTrip(t *testing.T) {
	p := ResolvePlan(WithDynamic(), WithSeed(3))
	if !p.Dynamic {
		t.Fatal("ResolvePlan dropped Dynamic")
	}
	raw, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := back.UnmarshalJSON(raw); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip changed plan: %+v vs %+v", back, p)
	}
	p2 := ResolvePlan(p.Options()...)
	if p2 != p {
		t.Fatalf("Options round trip changed plan: %+v vs %+v", p2, p)
	}
}
